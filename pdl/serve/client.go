package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/pdl/serve/wire"
)

// RemoteError is a failure reported by the server over the wire: the
// connection is fine, the server answered, and the answer was an error.
// It is not a transport failure, so retrying over a fresh connection
// cannot help.
type RemoteError struct {
	// Msg is the server's error text.
	Msg string
}

func (e *RemoteError) Error() string { return "serve: remote: " + e.Msg }

// ErrClientClosed reports a call on a Client whose Close was already
// called — a caller bug, not a connection failure. Transport failures
// (the server died, the network broke) surface as other errors, so a
// pooling caller like pdl/cluster can tell retryable shard loss (redial)
// from misuse (don't). It supports errors.Is.
var ErrClientClosed = errors.New("serve: client closed")

// DefaultConns is how many TCP connections Dial opens per endpoint on a
// machine with at least that many CPUs. Pipelined ops stripe round-robin
// across them, so one TCP window (and one kernel socket lock) no longer
// caps a client; WithConns overrides. Dial clamps the default to the CPU
// count — each connection costs a writer and a reader goroutine, which
// only pay for themselves when they can run in parallel.
const DefaultConns = 4

// defaultConns is the effective Dial default: DefaultConns capped at the
// available parallelism.
func defaultConns() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	if n > DefaultConns {
		n = DefaultConns
	}
	return n
}

const (
	// cliReadBufSize is the per-connection response read buffer.
	cliReadBufSize = 64 << 10

	// maxWriteBatch bounds how many request frames one writev gathers.
	maxWriteBatch = 64

	// sendqDepth is the per-connection outbound frame queue; enqueueing
	// blocks when it fills, which backpressures span streaming.
	sendqDepth = 512
)

// Option tunes Dial/DialContext.
type Option func(*dialOptions)

type dialOptions struct {
	conns    int
	noDelay  bool
	readBuf  int
	writeBuf int
}

// WithConns sets how many TCP connections the client opens (default
// DefaultConns). Values below 1 mean 1.
func WithConns(n int) Option { return func(o *dialOptions) { o.conns = n } }

// WithNoDelay sets TCP_NODELAY on every connection (default true: the
// client already batches frames via writev, so Nagle only adds latency).
func WithNoDelay(v bool) Option { return func(o *dialOptions) { o.noDelay = v } }

// WithReadBuffer sizes each connection's kernel receive buffer
// (SO_RCVBUF); zero keeps the OS default.
func WithReadBuffer(n int) Option { return func(o *dialOptions) { o.readBuf = n } }

// WithWriteBuffer sizes each connection's kernel send buffer
// (SO_SNDBUF); zero keeps the OS default.
func WithWriteBuffer(n int) Option { return func(o *dialOptions) { o.writeBuf = n } }

// call is one in-flight request's completion state. For OpReadSpan
// streams, units/recv/unit track the chunk reassembly: the reader fills
// dst incrementally and completes the call when every unit has arrived.
type call struct {
	dst  []byte  // read destination (response payload lands here directly)
	out  *[]byte // generic payload destination (info, stats), allocated
	done chan error

	units int // read stream: total units expected (0 for unit ops)
	recv  int // read stream: units received so far
	unit  int // read stream: unit size
}

// frame is one encoded request awaiting the writer. hdr holds the frame
// header (and, for span ops, the count payload); payload aliases the
// caller's buffer and goes out as its own iovec — the zero-copy send.
type frame struct {
	hdr     [wire.ReqFrameHeaderLen + wire.SpanCountLen]byte
	hn      int
	payload []byte
}

// pendShardBits/pendShards shard the pending-call table so pipelining
// goroutines don't serialize on one lock (and the table replaces the
// old map's per-request insert alloc with recycled slots).
const (
	pendShardBits = 3
	pendShards    = 1 << pendShardBits
)

// pendingTable maps request ids to in-flight calls. Ids encode their
// own location — gen(32) | slot(29) | shard(3) — so lookup is two
// indexes under a sharded lock, and a stale id (slot recycled, gen
// bumped) misses instead of aliasing.
type pendingTable struct {
	rr     atomic.Uint32
	shards [pendShards]pendShard
}

type pendShard struct {
	mu    sync.Mutex
	slots []pendSlot
	free  []uint32
}

type pendSlot struct {
	cl  *call
	gen uint32
}

func (t *pendingTable) put(cl *call) uint64 {
	si := uint64(t.rr.Add(1)) % pendShards
	sh := &t.shards[si]
	sh.mu.Lock()
	var idx uint32
	if n := len(sh.free); n > 0 {
		idx = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		idx = uint32(len(sh.slots))
		sh.slots = append(sh.slots, pendSlot{})
	}
	sl := &sh.slots[idx]
	sl.gen++
	sl.cl = cl
	id := uint64(sl.gen)<<32 | uint64(idx)<<pendShardBits | si
	sh.mu.Unlock()
	return id
}

func (t *pendingTable) locate(id uint64) (*pendShard, uint32, uint32) {
	sh := &t.shards[id&(pendShards-1)]
	idx := uint32(id>>pendShardBits) & (1<<29 - 1)
	gen := uint32(id >> 32)
	return sh, idx, gen
}

// peek returns the call registered under id, leaving it registered.
func (t *pendingTable) peek(id uint64) *call {
	sh, idx, gen := t.locate(id)
	var cl *call
	sh.mu.Lock()
	if int(idx) < len(sh.slots) && sh.slots[idx].gen == gen {
		cl = sh.slots[idx].cl
	}
	sh.mu.Unlock()
	return cl
}

// remove takes the call registered under id out of the table; nil means
// someone else (the reader, or a drain) already owns its completion.
func (t *pendingTable) remove(id uint64) *call {
	sh, idx, gen := t.locate(id)
	var cl *call
	sh.mu.Lock()
	if int(idx) < len(sh.slots) && sh.slots[idx].gen == gen && sh.slots[idx].cl != nil {
		cl = sh.slots[idx].cl
		sh.slots[idx].cl = nil
		sh.free = append(sh.free, idx)
	}
	sh.mu.Unlock()
	return cl
}

// drain completes every registered call with err. Only the connection's
// reader goroutine may call it (see cconn.readFail): a call being
// completed concurrently with the reader's ReadFull into its dst would
// let the caller recycle that buffer mid-read.
func (t *pendingTable) drain(err error) {
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		for i := range sh.slots {
			if cl := sh.slots[i].cl; cl != nil {
				sh.slots[i].cl = nil
				sh.free = append(sh.free, uint32(i))
				cl.done <- err
			}
		}
		sh.mu.Unlock()
	}
}

// cconn is one of the client's TCP connections: a writer goroutine
// gathering queued frames into writev batches, a reader goroutine
// demuxing responses into the pending table, and a sticky error set on
// the first failure.
type cconn struct {
	c     *Client
	nc    net.Conn
	sendq chan *frame
	quit  chan struct{}
	once  sync.Once

	mu     sync.Mutex
	sticky error

	pend pendingTable
}

// Client speaks the wire protocol over one or more connections. It is
// safe for concurrent use: goroutines' requests are pipelined and
// striped round-robin across the connections, matched to responses by
// id, so N concurrent callers give the server N requests to coalesce
// into batches without serializing on one TCP window.
type Client struct {
	conns  []*cconn
	rr     atomic.Uint32
	closed atomic.Bool

	// infoMu guards info, the server geometry: set by the handshake and
	// refreshed after Fail/Rebuild acks (or by RefreshInfo), so Failed
	// and Size track same-session state changes made through this client.
	infoMu sync.RWMutex
	info   wire.Info

	// version/features are the handshake's negotiated protocol level
	// (the minimum across connections) — fixed at dial time.
	version    uint8
	features   uint64
	useStreams bool

	callPool  sync.Pool
	framePool sync.Pool

	// requests, readSpans, and writeStreams count started unit requests
	// and opened wire v2 span streams over the client's life.
	requests     atomic.Int64
	readSpans    atomic.Int64
	writeStreams atomic.Int64
}

func newClient() *Client {
	c := &Client{}
	c.callPool.New = func() any { return &call{done: make(chan error, 1)} }
	c.framePool.New = func() any { return new(frame) }
	return c
}

// Dial connects to a serve.Server (DefaultConns connections unless
// WithConns says otherwise) and performs the geometry handshake.
func Dial(addr string, opts ...Option) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext is Dial bounded by ctx: a deadline or cancellation aborts
// the TCP connects (callers like pdl/cluster use it to put a dial
// timeout on every shard, so one unreachable endpoint cannot hang a
// fan-out).
func DialContext(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	o := dialOptions{conns: defaultConns(), noDelay: true}
	for _, opt := range opts {
		opt(&o)
	}
	if o.conns < 1 {
		o.conns = 1
	}
	c := newClient()
	for i := 0; i < o.conns; i++ {
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("serve: dial: %w", err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(o.noDelay)
			if o.readBuf > 0 {
				tc.SetReadBuffer(o.readBuf)
			}
			if o.writeBuf > 0 {
				tc.SetWriteBuffer(o.writeBuf)
			}
		}
		c.addConn(nc)
	}
	if err := c.handshake(); err != nil {
		c.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	return c, nil
}

// NewClient wraps an established connection (from Dial, or any net.Conn
// speaking the protocol) and performs the geometry handshake.
func NewClient(conn net.Conn) (*Client, error) {
	c := newClient()
	c.addConn(conn)
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	return c, nil
}

func (c *Client) addConn(nc net.Conn) {
	cn := &cconn{
		c:     c,
		nc:    nc,
		sendq: make(chan *frame, sendqDepth),
		quit:  make(chan struct{}),
	}
	c.conns = append(c.conns, cn)
	go cn.writeLoop()
	go cn.readLoop()
}

// handshake sends a v2 hello on every connection and records the
// negotiated protocol level: the minimum version and the feature
// intersection across connections (a v1 server answers with the plain
// Info, which decodes as version 1 / no features — the downgrade path).
func (c *Client) handshake() error {
	for i, cn := range c.conns {
		var raw []byte
		cl, err := c.startOn(cn, wire.OpInfo, Foreground, wire.EncodeHello(wire.Version2, wire.Features), nil, nil, &raw)
		if err != nil {
			return err
		}
		if err := c.wait(cl); err != nil {
			return err
		}
		var in wire.Info
		v, feats, err := wire.DecodeInfoAny(raw, &in)
		if err != nil {
			return err
		}
		if i == 0 {
			c.version, c.features = v, feats
			c.infoMu.Lock()
			c.info = in
			c.infoMu.Unlock()
		} else {
			if v < c.version {
				c.version = v
			}
			c.features &= feats
		}
	}
	c.useStreams = c.version >= wire.Version2 && c.features&wire.FeatStreams != 0
	return nil
}

// ProtocolVersion returns the wire version negotiated at dial time
// (wire.Version1 against an old server).
func (c *Client) ProtocolVersion() uint8 { return c.version }

// Features returns the feature bits accepted at dial time.
func (c *Client) Features() uint64 { return c.features }

// RefreshInfo re-issues the geometry handshake, updating what UnitSize,
// Capacity, Disks, Size, and Failed report. Fail and Rebuild call it
// after their acks; call it directly to observe state changes made by
// other clients of the same server.
func (c *Client) RefreshInfo() error {
	var raw []byte
	if err := c.do(wire.OpInfo, Foreground, wire.EncodeHello(wire.Version2, wire.Features), nil, nil, &raw); err != nil {
		return err
	}
	var in wire.Info
	if _, _, err := wire.DecodeInfoAny(raw, &in); err != nil {
		return err
	}
	c.infoMu.Lock()
	c.info = in
	c.infoMu.Unlock()
	return nil
}

// geom snapshots the current geometry.
func (c *Client) geom() wire.Info {
	c.infoMu.RLock()
	in := c.info
	c.infoMu.RUnlock()
	return in
}

// UnitSize returns the server's stripe-unit payload size in bytes.
func (c *Client) UnitSize() int { return c.geom().UnitSize }

// Capacity returns the server's number of addressable logical units.
func (c *Client) Capacity() int { return c.geom().Capacity }

// Disks returns the server's disk count.
func (c *Client) Disks() int { return c.geom().Disks }

// Close closes every connection; in-flight and later calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, cn := range c.conns {
		cn.poison(ErrClientClosed)
	}
	return nil
}

// Read fills dst (UnitSize bytes) with a logical unit's payload.
func (c *Client) Read(logical int, dst []byte) error {
	return c.ReadClass(logical, dst, Foreground)
}

// ReadClass is Read with an explicit priority class.
func (c *Client) ReadClass(logical int, dst []byte, class Class) error {
	if unit := c.UnitSize(); len(dst) != unit {
		return fmt.Errorf("serve: Read: dst is %d bytes, want unit size %d", len(dst), unit)
	}
	return c.do(wire.OpRead, class, uint64(logical), nil, dst, nil)
}

// Write stores src (UnitSize bytes) as a logical unit's payload.
func (c *Client) Write(logical int, src []byte) error {
	return c.WriteClass(logical, src, Foreground)
}

// WriteClass is Write with an explicit priority class.
func (c *Client) WriteClass(logical int, src []byte, class Class) error {
	if unit := c.UnitSize(); len(src) != unit {
		return fmt.Errorf("serve: Write: src is %d bytes, want unit size %d", len(src), unit)
	}
	return c.do(wire.OpWrite, class, uint64(logical), src, nil, nil)
}

// Fail marks a server disk failed; the array serves degraded after. On
// success the geometry is refreshed, so Failed reports the new state; a
// refresh error is returned even though the server-side Fail succeeded.
func (c *Client) Fail(disk int) error {
	if err := c.do(wire.OpFail, Foreground, uint64(disk), nil, nil, nil); err != nil {
		return err
	}
	return c.RefreshInfo()
}

// Rebuild reconstructs the failed disk onto a fresh replacement on the
// server, blocking until the array is healthy again. On success the
// geometry is refreshed, so Failed reports the rebuilt state; a refresh
// error is returned even though the server-side rebuild succeeded.
func (c *Client) Rebuild() error {
	if err := c.do(wire.OpRebuild, Foreground, 0, nil, nil, nil); err != nil {
		return err
	}
	return c.RefreshInfo()
}

// Stats fetches the server's store and frontend counters.
func (c *Client) Stats() (ServerStats, error) {
	var raw []byte
	var st ServerStats
	if err := c.do(wire.OpStats, Foreground, 0, nil, nil, &raw); err != nil {
		return st, err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("serve: Stats: %w", err)
	}
	return st, nil
}

// pickBlock is how many consecutive requests share a connection before
// round-robin moves on: temporally-clustered ops (a response burst
// waking a crowd of callers) land on one socket and gather into one
// writev, instead of splintering across every connection.
const pickBlock = 16

// pick returns the next connection, block-striped round-robin.
func (c *Client) pick() *cconn {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	return c.conns[int(c.rr.Add(1))/pickBlock%len(c.conns)]
}

func (c *Client) getCall() *call { return c.callPool.Get().(*call) }

func (c *Client) putCall(cl *call) {
	cl.dst, cl.out = nil, nil
	cl.units, cl.recv, cl.unit = 0, 0, 0
	c.callPool.Put(cl)
}

func (c *Client) putFrame(fr *frame) {
	fr.payload = nil
	c.framePool.Put(fr)
}

// do issues one request and blocks for its response.
func (c *Client) do(op uint8, class Class, arg uint64, payload, dst []byte, out *[]byte) error {
	cl, err := c.start(op, class, arg, payload, dst, out)
	if err != nil {
		return err
	}
	return c.wait(cl)
}

// start registers and sends one request without blocking for its
// response; the returned call must be handed to wait exactly once.
// Concurrent starts pipeline across the connections, which is how
// ReadAt/WriteAt spans reach the server's batch path: the in-flight unit
// ops land in the frontend queues together and coalesce into
// ReadVec/WriteVec passes. payload, when non-nil, is aliased until the
// call completes (the frame goes out as an iovec, not a copy).
func (c *Client) start(op uint8, class Class, arg uint64, payload, dst []byte, out *[]byte) (*call, error) {
	return c.startOn(c.pick(), op, class, arg, payload, dst, out)
}

func (c *Client) startOn(cn *cconn, op uint8, class Class, arg uint64, payload, dst []byte, out *[]byte) (*call, error) {
	if err := cn.err(); err != nil {
		return nil, err
	}
	c.requests.Add(1)
	cl := c.getCall()
	cl.dst = dst
	cl.out = out
	id := cn.pend.put(cl)

	fr := c.framePool.Get().(*frame)
	h := wire.AppendRequestHeader(fr.hdr[:0], &wire.Request{ID: id, Op: op, Class: uint8(class), Arg: arg}, len(payload))
	fr.hn = len(h)
	fr.payload = payload
	if err := cn.enqueue(fr, id); err != nil {
		c.putCall(cl)
		return nil, err
	}
	return cl, nil
}

// enqueue hands fr to the connection's writer. On a poisoned connection
// it resolves the race against the reader's drain: a non-nil return
// means this goroutine still owned the call's slot (the caller must not
// wait); nil with the slot already gone means someone else finished the
// call and the caller waits as usual.
func (cn *cconn) enqueue(fr *frame, id uint64) error {
	select {
	case cn.sendq <- fr:
	case <-cn.quit:
		cn.c.putFrame(fr)
		if cn.pend.remove(id) != nil {
			return cn.err()
		}
		return nil
	}
	// The connection may have failed between registration and the send
	// landing in the queue; if the drain missed the slot, resolve it
	// here so the call cannot strand.
	if serr := cn.err(); serr != nil {
		if cn.pend.remove(id) != nil {
			return serr
		}
	}
	return nil
}

// wait blocks for a started call's response and recycles the call.
func (c *Client) wait(cl *call) error {
	err := <-cl.done
	c.putCall(cl)
	return err
}

// waitSpan is wait for span calls: it also returns how many whole units
// of the stream's prefix were confirmed before any failure.
func (c *Client) waitSpan(cl *call) (recvUnits int, err error) {
	err = <-cl.done
	recvUnits = cl.recv
	c.putCall(cl)
	return recvUnits, err
}

// err returns the connection's sticky error.
func (cn *cconn) err() error {
	cn.mu.Lock()
	err := cn.sticky
	cn.mu.Unlock()
	return err
}

// poison marks the connection failed and closes the socket; it does NOT
// drain the pending table — the reader goroutine does that (readFail),
// so no call completes while the reader may still be filling its dst.
func (cn *cconn) poison(err error) {
	cn.mu.Lock()
	if cn.sticky == nil {
		cn.sticky = err
	}
	cn.mu.Unlock()
	cn.once.Do(func() { close(cn.quit) })
	cn.nc.Close()
}

// readFail is the reader's exit: poison, then drain — the reader is the
// only goroutine allowed to complete calls exceptionally.
func (cn *cconn) readFail(err error) {
	cn.poison(err)
	cn.pend.drain(cn.err())
}

// writeLoop drains sendq, gathering up to maxWriteBatch frames into one
// net.Buffers writev of header+payload iovecs — pipelined requests
// coalesce into single syscalls without copying payloads.
func (cn *cconn) writeLoop() {
	// bufs lives behind one stable pointer: Buffers.WriteTo has a pointer
	// receiver, so a stack header would escape and allocate per writev.
	bufs := new(net.Buffers)
	batch := make([]*frame, 0, maxWriteBatch)
	for {
		var fr *frame
		select {
		case fr = <-cn.sendq:
		case <-cn.quit:
			cn.drainSendq()
			return
		}
		batch = append(batch[:0], fr)
		// Yield once before collecting: the first enqueue wakes this
		// goroutine immediately, but its sender's siblings are usually
		// about to enqueue too (responses complete in bursts). Letting
		// them run first turns N one-frame writevs into one N-frame
		// writev — on a single core this is the difference between a
		// syscall per op and a syscall per batch.
		runtime.Gosched()
	collect:
		for len(batch) < maxWriteBatch {
			select {
			case fr2 := <-cn.sendq:
				batch = append(batch, fr2)
			default:
				break collect
			}
		}
		b := (*bufs)[:0]
		for _, f := range batch {
			b = append(b, f.hdr[:f.hn])
			if len(f.payload) > 0 {
				b = append(b, f.payload)
			}
		}
		*bufs = b
		_, werr := bufs.WriteTo(cn.nc)
		// WriteTo consumed *bufs; clear the backing array so the pooled
		// payloads are not pinned until the next batch.
		for i := range b {
			b[i] = nil
		}
		*bufs = b
		for i, f := range batch {
			cn.c.putFrame(f)
			batch[i] = nil
		}
		if werr != nil {
			if cn.c.closed.Load() {
				cn.poison(ErrClientClosed)
			} else {
				cn.poison(fmt.Errorf("serve: send: %w", werr))
			}
			cn.drainSendq()
			return
		}
	}
}

func (cn *cconn) drainSendq() {
	for {
		select {
		case fr := <-cn.sendq:
			cn.c.putFrame(fr)
		default:
			return
		}
	}
}

// readLoop demuxes response frames to their waiting calls, reading
// payloads directly into the callers' destination buffers (no staging
// copy). On transport failure every pending and future call gets the
// error.
func (cn *cconn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, cliReadBufSize)
	var hdr [wire.RespFrameHeaderLen]byte
	var resp wire.Response
	var scratch []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// A read error after Close is the expected teardown, not a
			// transport failure: type it so callers can tell the two apart.
			if cn.c.closed.Load() {
				cn.readFail(ErrClientClosed)
			} else {
				cn.readFail(fmt.Errorf("serve: connection: %w", err))
			}
			return
		}
		pl, err := wire.DecodeResponseHeader(hdr[:], &resp)
		if err != nil {
			cn.readFail(err)
			return
		}

		switch resp.Status {
		case wire.StatusChunk:
			// One ordered chunk of a read stream: land it directly in the
			// caller's span buffer at the confirmed-prefix position. The
			// call stays registered until its last unit arrives, so a
			// concurrent drain cannot complete it mid-ReadFull.
			cl := cn.pend.peek(resp.ID)
			if cl == nil || cl.units == 0 || cl.unit <= 0 {
				cn.readFail(fmt.Errorf("serve: unexpected chunk for request %d", resp.ID))
				return
			}
			if pl <= 0 || pl%cl.unit != 0 || cl.recv+pl/cl.unit > cl.units {
				cn.readFail(fmt.Errorf("serve: chunk of %d bytes breaks stream sequencing", pl))
				return
			}
			off := cl.recv * cl.unit
			if _, err := io.ReadFull(br, cl.dst[off:off+pl]); err != nil {
				cn.readFail(fmt.Errorf("serve: connection: %w", err))
				return
			}
			cl.recv += pl / cl.unit
			if cl.recv == cl.units {
				if cn.pend.remove(resp.ID) == cl {
					cl.done <- nil
				}
			}

		case wire.StatusOK:
			cl := cn.pend.remove(resp.ID)
			if cl == nil {
				cn.readFail(fmt.Errorf("serve: response for unknown request %d", resp.ID))
				return
			}
			var cerr error
			switch {
			case cl.units > 0:
				// Read streams terminate by delivering their units, never
				// by a bare OK.
				cl.done <- fmt.Errorf("serve: stray OK for read stream %d", resp.ID)
				cn.readFail(fmt.Errorf("serve: stray OK for read stream %d", resp.ID))
				return
			case cl.dst != nil:
				if pl != len(cl.dst) {
					cerr = fmt.Errorf("serve: response payload %d bytes, want %d", pl, len(cl.dst))
					if _, err := br.Discard(pl); err != nil {
						cl.done <- cerr
						cn.readFail(fmt.Errorf("serve: connection: %w", err))
						return
					}
				} else if _, err := io.ReadFull(br, cl.dst); err != nil {
					cl.done <- fmt.Errorf("serve: connection: %w", err)
					cn.readFail(fmt.Errorf("serve: connection: %w", err))
					return
				}
			case cl.out != nil:
				b := make([]byte, pl)
				if _, err := io.ReadFull(br, b); err != nil {
					cl.done <- fmt.Errorf("serve: connection: %w", err)
					cn.readFail(fmt.Errorf("serve: connection: %w", err))
					return
				}
				*cl.out = b
			default:
				if pl > 0 {
					if _, err := br.Discard(pl); err != nil {
						cl.done <- fmt.Errorf("serve: connection: %w", err)
						cn.readFail(fmt.Errorf("serve: connection: %w", err))
						return
					}
				}
			}
			cl.done <- cerr

		case wire.StatusErr:
			cl := cn.pend.remove(resp.ID)
			if cl == nil {
				cn.readFail(fmt.Errorf("serve: response for unknown request %d", resp.ID))
				return
			}
			if cap(scratch) < pl {
				scratch = make([]byte, pl)
			}
			scratch = scratch[:pl]
			if _, err := io.ReadFull(br, scratch); err != nil {
				cl.done <- fmt.Errorf("serve: connection: %w", err)
				cn.readFail(fmt.Errorf("serve: connection: %w", err))
				return
			}
			cl.done <- &RemoteError{Msg: string(scratch)}
		}
	}
}
