package serve_test

import (
	"bytes"
	"testing"

	"repro/pdl"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// TestServerClientTwoFailures drives the full TCP stack against a
// Reed–Solomon array with two parity units per stripe: fail two disks
// over the wire, serve every unit degraded, rebuild both disks online,
// and end healthy — the serve-layer acceptance pin for multi-failure
// tolerance.
func TestServerClientTwoFailures(t *testing.T) {
	const unitSize = 48
	res, err := pdl.Build(9, 4, pdl.WithParityShards(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := serve.New(s, serve.Config{QueueDepth: 16, FlushDelay: -1})
	t.Cleanup(func() {
		f.Close()
		s.Close()
	})
	addr := startServer(t, f)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, unitSize)
	got := make([]byte, unitSize)
	for i := 0; i < c.Capacity(); i++ {
		if err := c.Write(i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Two failures over the wire; a third must be refused remotely.
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(6); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(7); err == nil {
		t.Error("third Fail accepted over the wire on a two-parity array")
	}

	// Every unit is served with two disks down; writes keep working.
	for i := 0; i < c.Capacity(); i++ {
		if err := c.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(buf, i)) {
			t.Fatalf("two-down read %d diverges", i)
		}
	}
	if err := c.Write(3, payload(buf, 10007)); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.FailedDisk != 2 || len(st.Store.FailedDisks) != 2 ||
		st.Store.FailedDisks[0] != 2 || st.Store.FailedDisks[1] != 6 {
		t.Errorf("stats with two down: %+v", st.Store)
	}

	// Two online rebuilds over the wire heal the array (lowest disk
	// first), with reads correct at every stage.
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := s.FailedDisks(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("after first rebuild: FailedDisks = %v, want [6]", got)
	}
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if s.Failed() != -1 {
		t.Fatalf("after both rebuilds: Failed() = %d", s.Failed())
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Capacity(); i++ {
		want := payload(make([]byte, unitSize), i)
		if i == 3 {
			payload(want, 10007)
		}
		if err := c.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post-rebuild read %d diverges", i)
		}
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.FailedDisk != -1 || len(st.Store.FailedDisks) != 0 {
		t.Errorf("healthy stats: %+v", st.Store)
	}
}
