// Package serve is the network-facing front end of the parity-declustered
// serving stack: a Frontend turns many independent client requests into
// efficient batched array I/O against a pdl/store Store, and Server/Client
// carry those requests over TCP with a small length-prefixed protocol
// (see the wire subpackage).
//
// The Frontend is a bounded submission queue plus a batcher: requests
// accumulate until the batch is full (flush-on-full) or a deadline
// expires (flush-on-deadline), then execute as one store.ReadVec or
// store.WriteVec pass — one lock acquisition per touched stripe, and,
// when a stripe's worth of small writes coalesces, a single Condition 5
// full-stripe write instead of N read-modify-writes. Admission applies
// backpressure (a full queue blocks, honoring context cancellation) and
// two priority classes: Foreground requests always dispatch before
// Background ones, so rebuild or scrub traffic is throttled while
// clients are active.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdl/obs"
	"repro/pdl/sim"
	"repro/pdl/store"
)

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("serve: frontend closed")

// Class is a request priority class.
type Class uint8

const (
	// Foreground is client traffic: always dispatched first.
	Foreground Class = iota

	// Background is maintenance traffic (rebuild reads, scrubs): it is
	// admitted through its own queue and dispatched only when no
	// foreground request is waiting.
	Background
)

// Kind distinguishes the two request kinds.
type Kind uint8

const (
	// Read fills Op.Buf with a logical unit's payload.
	Read Kind = iota

	// Write stores Op.Buf as a logical unit's payload.
	Write
)

// Op is one unit-granularity request submitted to a Frontend.
type Op struct {
	// Kind selects read or write.
	Kind Kind

	// Class is the priority class (zero value: Foreground).
	Class Class

	// Logical is the data unit addressed.
	Logical int

	// Buf is the unit payload buffer, exactly UnitSize bytes: the
	// destination for reads, the source for writes. The caller must not
	// touch it until the request completes.
	Buf []byte
}

// Config tunes a Frontend. The zero value selects the defaults.
type Config struct {
	// QueueDepth bounds each class's submission queue and caps the batch
	// size: at most QueueDepth requests coalesce into one store pass, and
	// a class with QueueDepth requests waiting blocks further admissions
	// (backpressure). Default 64.
	QueueDepth int

	// FlushDelay is how long an open batch waits for more requests before
	// flushing (flush-on-deadline). Negative means flush as soon as the
	// queues are momentarily empty — lowest latency, smallest batches.
	// Zero selects the default, 100µs. (Sub-millisecond deadlines are
	// limited by timer wakeup granularity; sustained load flushes on full
	// instead and never waits for the timer.)
	FlushDelay time.Duration

	// Workers is the number of executor goroutines draining batches;
	// batches on distinct stripes execute in parallel under the store's
	// striped locks. Default GOMAXPROCS.
	Workers int
}

// DefaultQueueDepth is the submission-queue bound when Config.QueueDepth
// is zero.
const DefaultQueueDepth = 64

// DefaultFlushDelay is the batch deadline when Config.FlushDelay is zero.
const DefaultFlushDelay = 100 * time.Microsecond

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.FlushDelay == 0 {
		out.FlushDelay = DefaultFlushDelay
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Stats is a point-in-time snapshot of a Frontend's counters.
type Stats struct {
	// Submitted counts admitted requests; Background of them arrived on
	// the background queue.
	Submitted, Background int64

	// Completed counts finished requests; Rejected counts submissions
	// refused at admission (validation, cancellation, or ErrClosed).
	Completed, Rejected int64

	// Batches counts dispatched batches; BatchedOps their total size, so
	// BatchedOps/Batches is the mean coalescing factor.
	Batches, BatchedOps int64

	// FlushFull and FlushDeadline count why batches dispatched: the batch
	// reached QueueDepth, or FlushDelay expired first.
	FlushFull, FlushDeadline int64

	// FgQueue and BgQueue are the instantaneous submission-queue depths
	// per class.
	FgQueue, BgQueue int

	// ForegroundLatency and BackgroundLatency summarize end-to-end
	// request latency (admission to completion) per class.
	ForegroundLatency, BackgroundLatency obs.Summary
}

// request is the pooled internal form of an Op.
type request struct {
	op    Op
	start time.Time   // admission time, for end-to-end latency
	cb    func(error) // async completion; nil for sync waiters
	done  chan error  // sync completion, capacity 1, reused with the request
}

// Frontend batches and executes requests against a Store. All methods
// are safe for concurrent use.
type Frontend struct {
	s   *store.Store
	cfg Config

	fg, bg chan *request
	exec   chan *[]*request
	quit   chan struct{}

	// closeMu serializes admission against Close: submitters hold it
	// shared across the closed-check and the enqueue, so after Close
	// takes it exclusively no new request can enter the queues.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	reqPool   sync.Pool
	batchPool sync.Pool

	submitted, background, completed, rejected atomic.Int64
	batches, batchedOps, flushFull, flushDL    atomic.Int64

	// latHist records end-to-end request latency (admission to
	// completion), indexed by Class.
	latHist [2]obs.Hist

	// trace, when set, records every admitted request (kind, class,
	// logical, arrival time) into a sim.TraceWriter — the capture side
	// of the scenario engine's record/replay loop. It is an atomic
	// pointer so the hot path pays one load and a nil check when
	// recording is off.
	trace atomic.Pointer[sim.TraceWriter]
}

// New starts a Frontend serving s. Close releases its goroutines; the
// Store itself stays open (the caller owns it).
func New(s *store.Store, cfg Config) *Frontend {
	if s == nil {
		panic("serve: New: nil Store")
	}
	c := cfg.withDefaults()
	f := &Frontend{
		s:    s,
		cfg:  c,
		fg:   make(chan *request, c.QueueDepth),
		bg:   make(chan *request, c.QueueDepth),
		exec: make(chan *[]*request, c.Workers),
		quit: make(chan struct{}),
	}
	f.reqPool.New = func() any { return &request{done: make(chan error, 1)} }
	f.batchPool.New = func() any {
		b := make([]*request, 0, c.QueueDepth)
		return &b
	}
	f.wg.Add(1 + c.Workers)
	go f.batcher()
	for i := 0; i < c.Workers; i++ {
		go f.worker()
	}
	return f
}

// Store returns the underlying byte store (for admin operations: Fail,
// Rebuild, Stats, VerifyParity).
func (f *Frontend) Store() *store.Store { return f.s }

// Stats snapshots the frontend counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Submitted:         f.submitted.Load(),
		Background:        f.background.Load(),
		Completed:         f.completed.Load(),
		Rejected:          f.rejected.Load(),
		Batches:           f.batches.Load(),
		BatchedOps:        f.batchedOps.Load(),
		FlushFull:         f.flushFull.Load(),
		FlushDeadline:     f.flushDL.Load(),
		FgQueue:           len(f.fg),
		BgQueue:           len(f.bg),
		ForegroundLatency: f.latHist[Foreground].Summary(),
		BackgroundLatency: f.latHist[Background].Summary(),
	}
}

// RecordTrace starts recording every admitted request into tw in
// admission order; nil stops recording. The caller owns the writer and
// its Flush. Recording captures the live request stream a deployment
// actually served, so a scenario can replay it later (with original
// timing or a speed multiplier) against any target.
func (f *Frontend) RecordTrace(tw *sim.TraceWriter) {
	f.trace.Store(tw)
}

// Close drains the queues, executes what was already admitted, and stops
// the batcher and workers. Further submissions return ErrClosed. It does
// not close the Store.
func (f *Frontend) Close() error {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return nil
	}
	f.closed = true
	f.closeMu.Unlock()
	close(f.quit)
	f.wg.Wait()
	return nil
}

// Do submits op and blocks until it completes, returning the execution
// error. Admission blocks while op's class queue is full; ctx cancels
// the wait for admission only — once admitted, the op runs to completion
// (its buffer is in flight and must not be reused earlier).
func (f *Frontend) Do(ctx context.Context, op Op) error {
	r, err := f.submit(ctx, op, nil)
	if err != nil {
		return err
	}
	err = <-r.done
	f.reqPool.Put(r)
	return err
}

// Go submits op asynchronously: complete is invoked exactly once (on an
// executor goroutine) with the op's execution error. A non-nil return
// means the op was not admitted and complete will not be called.
func (f *Frontend) Go(ctx context.Context, op Op, complete func(error)) error {
	if complete == nil {
		return errors.New("serve: Go: nil completion")
	}
	_, err := f.submit(ctx, op, complete)
	return err
}

// Read serves a foreground unit read: dst must be UnitSize bytes.
func (f *Frontend) Read(ctx context.Context, logical int, dst []byte) error {
	return f.Do(ctx, Op{Kind: Read, Logical: logical, Buf: dst})
}

// Write serves a foreground unit write: src must be UnitSize bytes.
func (f *Frontend) Write(ctx context.Context, logical int, src []byte) error {
	return f.Do(ctx, Op{Kind: Write, Logical: logical, Buf: src})
}

// submit validates and enqueues op, so batch execution errors are real
// I/O errors, never one request's bad arguments.
func (f *Frontend) submit(ctx context.Context, op Op, cb func(error)) (*request, error) {
	if op.Kind != Read && op.Kind != Write {
		f.rejected.Add(1)
		return nil, fmt.Errorf("serve: bad op kind %d", op.Kind)
	}
	if op.Class != Foreground && op.Class != Background {
		f.rejected.Add(1)
		return nil, fmt.Errorf("serve: bad class %d", op.Class)
	}
	if op.Logical < 0 || op.Logical >= f.s.Capacity() {
		f.rejected.Add(1)
		return nil, fmt.Errorf("serve: logical %d outside [0,%d)", op.Logical, f.s.Capacity())
	}
	if len(op.Buf) != f.s.UnitSize() {
		f.rejected.Add(1)
		return nil, fmt.Errorf("serve: buf is %d bytes, want unit size %d", len(op.Buf), f.s.UnitSize())
	}
	r := f.reqPool.Get().(*request)
	r.op = op
	r.start = time.Now()
	r.cb = cb
	q := f.fg
	if op.Class == Background {
		q = f.bg
	}
	// The admission lock is held across the (possibly blocking) enqueue:
	// Close cannot start draining while any submitter is mid-send, so an
	// admitted request is always executed. A full queue therefore holds
	// Close up until the batcher drains the blocked senders — or their
	// contexts cancel.
	f.closeMu.RLock()
	if f.closed {
		f.closeMu.RUnlock()
		f.reqPool.Put(r)
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case q <- r:
		f.closeMu.RUnlock()
	case <-ctx.Done():
		f.closeMu.RUnlock()
		f.reqPool.Put(r)
		f.rejected.Add(1)
		return nil, ctx.Err()
	}
	f.submitted.Add(1)
	if op.Class == Background {
		f.background.Add(1)
	}
	if tw := f.trace.Load(); tw != nil {
		kind := sim.Read
		if op.Kind == Write {
			kind = sim.Write
		}
		// Best effort: a sticky writer error surfaces at Flush; dropping
		// a trace op must never fail the request it shadows.
		_ = tw.Record(kind, op.Logical, op.Class == Background, r.start)
	}
	return r, nil
}

// batcher collects submissions into batches and hands them to the
// workers: flush-on-full at QueueDepth, flush-on-deadline at FlushDelay,
// foreground strictly before background.
func (f *Frontend) batcher() {
	defer f.wg.Done()
	defer close(f.exec)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		r := f.first()
		if r == nil {
			return
		}
		bp := f.batchPool.Get().(*[]*request)
		batch := append((*bp)[:0], r)
		batch = f.fill(batch, timer)
		*bp = batch
		f.batches.Add(1)
		f.batchedOps.Add(int64(len(batch)))
		f.exec <- bp
	}
}

// first blocks for a batch's opening request, foreground preferred; it
// returns nil once the frontend is closed and the queues are drained.
func (f *Frontend) first() *request {
	select {
	case r := <-f.fg:
		return r
	default:
	}
	select {
	case r := <-f.fg:
		return r
	case r := <-f.bg:
		return r
	case <-f.quit:
		// Closed: nothing new can arrive; serve what is still queued.
		return f.takeWaiting()
	}
}

// takeWaiting returns an already-queued request, foreground first, or
// nil when both queues are momentarily empty.
func (f *Frontend) takeWaiting() *request {
	select {
	case r := <-f.fg:
		return r
	default:
	}
	select {
	case r := <-f.bg:
		return r
	default:
		return nil
	}
}

// fill grows batch until full or the flush deadline, foreground first.
func (f *Frontend) fill(batch []*request, timer *time.Timer) []*request {
	if f.cfg.FlushDelay < 0 {
		// Immediate mode: take whatever is already waiting, then flush.
		return f.finishFill(batch)
	}
	timer.Reset(f.cfg.FlushDelay)
	for len(batch) < f.cfg.QueueDepth {
		select {
		case r := <-f.fg:
			batch = append(batch, r)
			continue
		default:
		}
		select {
		case r := <-f.fg:
			batch = append(batch, r)
		case r := <-f.bg:
			batch = append(batch, r)
		case <-timer.C:
			f.flushDL.Add(1)
			return batch
		case <-f.quit:
			stopTimer(timer)
			return f.finishFill(batch)
		}
	}
	stopTimer(timer)
	f.flushFull.Add(1)
	return batch
}

// finishFill tops the batch up with already-waiting requests and
// accounts the flush reason: full if the batch hit QueueDepth, deadline
// (an empty-queue flush) otherwise.
func (f *Frontend) finishFill(batch []*request) []*request {
	for len(batch) < f.cfg.QueueDepth {
		r := f.takeWaiting()
		if r == nil {
			f.flushDL.Add(1)
			return batch
		}
		batch = append(batch, r)
	}
	f.flushFull.Add(1)
	return batch
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// execState is one worker's reusable partition scratch.
type execState struct {
	rops, wops   []store.VecOp
	rreqs, wreqs []*request
}

func (f *Frontend) worker() {
	defer f.wg.Done()
	var ex execState
	for bp := range f.exec {
		f.run(&ex, *bp)
		*bp = (*bp)[:0]
		f.batchPool.Put(bp)
	}
}

// run executes one batch: writes as one WriteVec pass (coalescing plus
// full-stripe promotion), then reads as one ReadVec pass.
func (f *Frontend) run(ex *execState, batch []*request) {
	ex.rops, ex.wops = ex.rops[:0], ex.wops[:0]
	ex.rreqs, ex.wreqs = ex.rreqs[:0], ex.wreqs[:0]
	for _, r := range batch {
		vop := store.VecOp{Logical: r.op.Logical, Buf: r.op.Buf}
		if r.op.Kind == Write {
			ex.wops = append(ex.wops, vop)
			ex.wreqs = append(ex.wreqs, r)
		} else {
			ex.rops = append(ex.rops, vop)
			ex.rreqs = append(ex.rreqs, r)
		}
	}
	if len(ex.wops) > 0 {
		err := f.s.WriteVec(ex.wops)
		f.finish(ex.wreqs, err)
	}
	if len(ex.rops) > 0 {
		err := f.s.ReadVec(ex.rops)
		f.finish(ex.rreqs, err)
	}
}

// finish completes a batch's requests with its vec error. A vec pass
// stops at the first failure, so err is reported to every request of the
// pass (the store's error names the failing disk operation).
func (f *Frontend) finish(reqs []*request, err error) {
	for _, r := range reqs {
		f.completed.Add(1)
		f.latHist[r.op.Class].Record(time.Since(r.start))
		if cb := r.cb; cb != nil {
			r.cb = nil
			f.reqPool.Put(r)
			cb(err)
			continue
		}
		r.done <- err
	}
}
