package serve_test

import (
	"testing"
	"time"

	"repro/pdl/scenario"
	"repro/pdl/scenario/scenariotest"
	"repro/pdl/serve"
)

// TestServeSoak is the network mirror of pdl/store's concurrent hammer,
// run under -race in CI, scripted through the scenario engine: several
// workers hammer a loopback pdlserve endpoint in verify mode (every
// read checked against the modeled write, full sweep at the end) while
// a background-class stream runs and the array degrades (fail over the
// wire) and rebuilds (over the wire, mid-traffic). The harness audits
// parity after the run; PDL_SCENARIO_OPS lengthens each phase for the
// nightly soak.
func TestServeSoak(t *testing.T) {
	tgt := scenariotest.NewServe(t, scenariotest.Array{Copies: 2},
		serve.Config{QueueDepth: 32, FlushDelay: 100 * time.Microsecond})
	ops := scenariotest.Ops(1000)
	load := scenario.Load{Workers: 8, Ops: ops, WriteFrac: 0.66}
	sc := &scenario.Scenario{
		Name:       "serve-soak",
		Seed:       0xD15C,
		Verify:     true,
		Background: &scenario.Load{Workers: 2, WriteFrac: 0.66},
		Phases: []scenario.Phase{
			{Name: "healthy", Load: load, SLO: &scenario.SLO{}},
			{
				Name:   "degraded",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActFail, Disk: 5, AtOps: ops / 10}},
				SLO:    &scenario.SLO{},
			},
			{
				// The rebuild fires a tenth of the way in and runs while
				// the other workers keep the store under load.
				Name:   "rebuild",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActRebuild, AtOps: ops / 10}},
				SLO:    &scenario.SLO{RequireHealthy: true},
			},
			{Name: "rebuilt", Load: load, SLO: &scenario.SLO{RequireHealthy: true}},
		},
	}
	rep := scenariotest.Run(t, sc, tgt)
	if rep.BackgroundOps == 0 {
		t.Error("background stream recorded no operations")
	}

	// The soak must have exercised the paths it claims to: degraded
	// reads, background batching, and batch formation.
	st, err := tgt.C.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Degraded == 0 || st.Frontend.Background == 0 || st.Frontend.Batches == 0 {
		t.Errorf("soak stats implausible: %+v", st)
	}
}
