package serve_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/pdl/serve"
)

// soakOps returns the per-goroutine operation count: def on a normal
// run, or PDL_SOAK_OPS when set (the nightly workflow cranks it up for
// a long soak under -race).
func soakOps(def int) int {
	if v := os.Getenv("PDL_SOAK_OPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestServeSoak is the network mirror of pdl/store's concurrent hammer,
// run under -race in CI: several TCP clients, each with several
// goroutines on disjoint logical slices, hammer reads and writes while
// the array degrades (Fail over the wire) and rebuilds (Rebuild over the
// wire, mid-traffic). Every read is checked against the goroutine's own
// model; afterward the store must verify parity and match the models.
func TestServeSoak(t *testing.T) {
	const (
		unitSize   = 32
		clients    = 2
		goroutines = 4 // per client
	)
	opsPerGo := soakOps(250)
	f := mustFrontend(t, 13, 4, 2, unitSize, serve.Config{QueueDepth: 32, FlushDelay: 100 * time.Microsecond})
	addr := startServer(t, f)

	conns := make([]*serve.Client, clients)
	for i := range conns {
		c, err := serve.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	capacity := conns[0].Capacity()
	lanes := clients * goroutines
	// models[lane][logical] is the lane's expected payload (lanes own
	// logical % lanes == lane).
	models := make([]map[int][]byte, lanes)
	for i := range models {
		models[i] = make(map[int][]byte)
	}

	hammer := func(phase int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, lanes)
		for lane := 0; lane < lanes; lane++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				c := conns[lane%clients]
				rng := rand.New(rand.NewSource(int64(phase*lanes + lane)))
				buf := make([]byte, unitSize)
				got := make([]byte, unitSize)
				for i := 0; i < opsPerGo; i++ {
					logical := lane + lanes*rng.Intn(capacity/lanes)
					if rng.Intn(3) == 0 {
						if err := c.Read(logical, got); err != nil {
							errs <- err
							return
						}
						want, written := models[lane][logical]
						if !written {
							want = make([]byte, unitSize)
						}
						if !bytes.Equal(got, want) {
							errs <- fmt.Errorf("lane %d phase %d logical %d: got %x want %x", lane, phase, logical, got, want)
							return
						}
						continue
					}
					rng.Read(buf)
					// Mixed classes: a slice of traffic rides the
					// background queue.
					class := serve.Foreground
					if rng.Intn(5) == 0 {
						class = serve.Background
					}
					if err := c.WriteClass(logical, buf, class); err != nil {
						errs <- err
						return
					}
					models[lane][logical] = append([]byte(nil), buf...)
				}
			}(lane)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	sweep := func(tag string) {
		t.Helper()
		got := make([]byte, unitSize)
		zero := make([]byte, unitSize)
		for logical := 0; logical < capacity; logical++ {
			if err := conns[logical%clients].Read(logical, got); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			want, written := models[logical%lanes][logical]
			if !written {
				want = zero
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: logical %d: got %x want %x", tag, logical, got, want)
			}
		}
	}

	hammer(1)
	if err := f.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
	sweep("healthy")

	// Disk down over the wire; all traffic continues degraded.
	if err := conns[0].Fail(5); err != nil {
		t.Fatal(err)
	}
	hammer(2)
	sweep("degraded")

	// Rebuild over the wire while the hammer keeps running.
	rebuildErr := make(chan error, 1)
	go func() { rebuildErr <- conns[1].Rebuild() }()
	hammer(3)
	if err := <-rebuildErr; err != nil {
		t.Fatal(err)
	}
	if got := f.Store().Failed(); got != -1 {
		t.Fatalf("after rebuild: Failed() = %d", got)
	}
	if err := f.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
	hammer(4)
	sweep("rebuilt")

	st, err := conns[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Degraded == 0 || st.Frontend.Background == 0 || st.Frontend.Batches == 0 {
		t.Errorf("soak stats implausible: %+v", st)
	}
}
