package serve_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pdl"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// mustFrontend builds a MemDisk-backed store for (v, k) and a Frontend
// over it.
func mustFrontend(t testing.TB, v, k, copies, unitSize int, cfg serve.Config) *serve.Frontend {
	t.Helper()
	res, err := pdl.Build(v, k)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, copies*res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := serve.New(s, cfg)
	t.Cleanup(func() {
		f.Close()
		s.Close()
	})
	return f
}

func payload(buf []byte, seed int) []byte {
	for j := range buf {
		buf[j] = byte(seed*31 + j*7 + 1)
	}
	return buf
}

// TestFrontendReadWrite writes and reads every unit through the batching
// path and checks bytes and parity.
func TestFrontendReadWrite(t *testing.T) {
	const unitSize = 32
	// Immediate flush: sequential Do calls should not pay the deadline.
	f := mustFrontend(t, 13, 4, 2, unitSize, serve.Config{FlushDelay: -1})
	ctx := context.Background()
	buf := make([]byte, unitSize)
	for i := 0; i < f.Store().Capacity(); i++ {
		if err := f.Write(ctx, i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, unitSize)
	want := make([]byte, unitSize)
	for i := 0; i < f.Store().Capacity(); i++ {
		if err := f.Read(ctx, i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(want, i)) {
			t.Fatalf("logical %d diverges", i)
		}
	}
	if err := f.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Submitted == 0 || st.Completed != st.Submitted || st.Batches == 0 {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestFrontendCoalescing proves concurrent small writes coalesce into
// full-stripe batches: a sequential write sweep submitted QueueDepth at
// a time must issue far fewer physical reads than one read-modify-write
// pair per op (a full sweep with no batching would issue 2 per op).
func TestFrontendCoalescing(t *testing.T) {
	const unitSize = 64
	const depth = 32
	f := mustFrontend(t, 9, 3, 2, unitSize, serve.Config{QueueDepth: depth, FlushDelay: 2 * time.Millisecond})
	ctx := context.Background()
	cap := f.Store().Capacity()
	bufs := make([][]byte, depth)
	for i := range bufs {
		bufs[i] = payload(make([]byte, unitSize), i)
	}
	for base := 0; base < cap; base += depth {
		n := depth
		if base+n > cap {
			n = cap - base
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		for j := 0; j < n; j++ {
			wg.Add(1)
			j := j
			if err := f.Go(ctx, serve.Op{Kind: serve.Write, Logical: base + j, Buf: bufs[j%depth]}, func(err error) {
				errs[j] = err
				wg.Done()
			}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var reads int64
	for _, d := range f.Store().Stats().Disks {
		reads += d.Reads
	}
	// Unbatched, the sweep would pre-read 2*cap units. Coalesced, whole
	// stripes promote to no-preread writes; only boundary stragglers pay.
	if reads >= int64(cap) {
		t.Errorf("sequential sweep issued %d pre-reads (unbatched would be %d); coalescing broken", reads, 2*cap)
	}
	if err := f.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if avg := float64(st.BatchedOps) / float64(st.Batches); avg < 2 {
		t.Errorf("mean batch size %.1f, want >= 2 (stats %+v)", avg, st)
	}
}

// gatedDisk wraps a Backend, blocking every write while the gate is
// shut — a way to hold the executor busy and fill the queues.
type gatedDisk struct {
	store.Backend
	gate chan struct{}
}

func (g *gatedDisk) WriteAt(p []byte, off int64) (int, error) {
	<-g.gate
	return g.Backend.WriteAt(p, off)
}

// TestFrontendBackpressure fills the bounded queue against a blocked
// executor and checks that admission blocks until context cancellation.
func TestFrontendBackpressure(t *testing.T) {
	const unitSize = 16
	const depth = 4
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	m, err := res.NewMapper(res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]store.Backend, m.Disks())
	for d := range backends {
		backends[d] = &gatedDisk{Backend: store.NewMemDisk(int64(m.DiskUnits()) * unitSize), gate: gate}
	}
	s, err := store.New(m, unitSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	f := serve.New(s, serve.Config{QueueDepth: depth, FlushDelay: -1, Workers: 1})
	defer func() {
		f.Close()
		s.Close()
	}()

	// Saturate: the worker wedges on the gate; the batcher then wedges
	// handing over its batch, and the queue fills. The wedged pipeline
	// (worker + exec channel + batcher hand + queue) holds at most
	// 3*depth + depth admissions, so with more submitters than that some
	// must block on the full queue.
	const submitters = 8 * depth
	buf := payload(make([]byte, unitSize), 1)
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Go(context.Background(), serve.Op{Kind: serve.Write, Logical: i % s.Capacity(), Buf: buf}, func(error) {})
			admitted.Add(1)
		}(i)
	}

	// Wait until admissions stop progressing: the queue is full (channel
	// sends block only on a full queue) and stays full (the batcher is
	// wedged and cannot drain it).
	last, stable := int64(-1), 0
	for stable < 10 {
		time.Sleep(20 * time.Millisecond)
		if n := admitted.Load(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	if last >= submitters {
		t.Fatalf("all %d submissions admitted; queue never filled", submitters)
	}

	// A submission against the full queue must honor cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = f.Do(ctx, serve.Op{Kind: serve.Write, Logical: 0, Buf: buf})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled admission = %v, want context.DeadlineExceeded", err)
	}
	if f.Stats().Rejected == 0 {
		t.Error("Rejected counter not bumped")
	}
	close(gate)
	wg.Wait()
}

// TestFrontendValidation pins admission-time rejection.
func TestFrontendValidation(t *testing.T) {
	const unitSize = 16
	f := mustFrontend(t, 9, 3, 1, unitSize, serve.Config{})
	ctx := context.Background()
	buf := make([]byte, unitSize)
	if err := f.Do(ctx, serve.Op{Kind: 9, Logical: 0, Buf: buf}); err == nil {
		t.Error("bad kind admitted")
	}
	if err := f.Do(ctx, serve.Op{Kind: serve.Read, Class: 7, Logical: 0, Buf: buf}); err == nil {
		t.Error("bad class admitted")
	}
	if err := f.Do(ctx, serve.Op{Kind: serve.Read, Logical: -1, Buf: buf}); err == nil {
		t.Error("bad logical admitted")
	}
	if err := f.Do(ctx, serve.Op{Kind: serve.Read, Logical: 0, Buf: buf[:3]}); err == nil {
		t.Error("bad buffer admitted")
	}
	if err := f.Go(ctx, serve.Op{}, nil); err == nil {
		t.Error("nil completion admitted")
	}
	if n := f.Stats().Rejected; n != 4 {
		t.Errorf("Rejected = %d, want 4", n)
	}
}

// TestFrontendClose: queued work finishes, later submissions fail.
func TestFrontendClose(t *testing.T) {
	const unitSize = 16
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f := serve.New(s, serve.Config{QueueDepth: 8, FlushDelay: time.Millisecond})
	ctx := context.Background()
	buf := payload(make([]byte, unitSize), 3)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		i := i
		if err := f.Go(ctx, serve.Op{Kind: serve.Write, Logical: i, Buf: buf}, func(e error) { errs[i] = e; wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("queued op %d after Close: %v", i, err)
		}
	}
	if err := f.Do(ctx, serve.Op{Kind: serve.Read, Logical: 0, Buf: buf}); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("Do after Close = %v, want ErrClosed", err)
	}
	got := make([]byte, unitSize)
	if err := s.Read(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("write queued before Close was lost")
	}
	if f.Close() != nil {
		t.Error("second Close errored")
	}
}

// startServer runs a Server for f on an ephemeral localhost port.
func startServer(t testing.TB, f *serve.Frontend) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(f)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestServerClient is the end-to-end network path: write, read, fail,
// degraded read, rebuild, stats — all over a real TCP socket.
func TestServerClient(t *testing.T) {
	const unitSize = 48
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 16, FlushDelay: -1})
	addr := startServer(t, f)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.UnitSize() != unitSize || c.Capacity() != f.Store().Capacity() || c.Disks() != 13 {
		t.Fatalf("handshake geometry: unit %d capacity %d disks %d", c.UnitSize(), c.Capacity(), c.Disks())
	}

	// Concurrent clients hammer the whole space.
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, unitSize)
			got := make([]byte, unitSize)
			for i := g; i < c.Capacity(); i += goroutines {
				if err := c.Write(i, payload(buf, i)); err != nil {
					errCh <- err
					return
				}
				if err := c.Read(i, got); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errCh <- errors.New("read diverges from write")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Failure and degraded serving over the wire.
	if err := c.Fail(5); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(5); err == nil {
		t.Error("second Fail should report remote error")
	} else if _, ok := err.(*serve.RemoteError); !ok {
		t.Errorf("second Fail error type %T", err)
	}
	got := make([]byte, unitSize)
	want := make([]byte, unitSize)
	for i := 0; i < c.Capacity(); i++ {
		if err := c.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(want, i)) {
			t.Fatalf("degraded read %d diverges", i)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.FailedDisk != 5 || st.Store.Degraded == 0 {
		t.Errorf("stats after fail: %+v", st.Store)
	}

	// Online rebuild over the wire, then verify the array healed.
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if f.Store().Failed() != -1 {
		t.Errorf("failed disk after rebuild: %d", f.Store().Failed())
	}
	if err := f.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Capacity(); i++ {
		if err := c.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(want, i)) {
			t.Fatalf("post-rebuild read %d diverges", i)
		}
	}
}

// TestClientValidation pins client-side argument checks and the sticky
// connection error after Close.
func TestClientValidation(t *testing.T) {
	const unitSize = 16
	f := mustFrontend(t, 9, 3, 1, unitSize, serve.Config{})
	addr := startServer(t, f)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Read(0, make([]byte, 3)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := c.Write(0, make([]byte, unitSize+1)); err == nil {
		t.Error("long write buffer accepted")
	}
	c.Close()
	if err := c.Read(0, make([]byte, unitSize)); err == nil {
		t.Error("read on closed client succeeded")
	}
}
