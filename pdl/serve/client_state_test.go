package serve_test

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/pdl/serve"
)

// TestClientGeometryRefresh is the regression test for stale client
// geometry: Failed() used to report the handshake-time wire.Info
// forever, so a same-session Fail or Rebuild left the client believing
// the old state. Fail/Rebuild now re-issue OpInfo after their acks, and
// other clients of the same server catch up via RefreshInfo.
func TestClientGeometryRefresh(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{FlushDelay: -1})
	addr := startServer(t, f)

	c1, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c1.Failed(); got != -1 {
		t.Fatalf("healthy handshake: Failed() = %d, want -1", got)
	}
	size := c1.Size()

	// The failing client sees the new state immediately.
	if err := c1.Fail(5); err != nil {
		t.Fatal(err)
	}
	if got := c1.Failed(); got != 5 {
		t.Fatalf("after Fail(5) on same client: Failed() = %d, want 5", got)
	}
	// A second connection still holds its handshake view until it asks.
	if got := c2.Failed(); got != -1 {
		t.Fatalf("other client before RefreshInfo: Failed() = %d, want -1 (stale by design)", got)
	}
	if err := c2.RefreshInfo(); err != nil {
		t.Fatal(err)
	}
	if got := c2.Failed(); got != 5 {
		t.Fatalf("other client after RefreshInfo: Failed() = %d, want 5", got)
	}

	// Rebuild flips the same-session view back to healthy.
	if err := c1.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := c1.Failed(); got != -1 {
		t.Fatalf("after Rebuild on same client: Failed() = %d, want -1", got)
	}
	if got := c1.Size(); got != size {
		t.Fatalf("Size() changed across Fail/Rebuild: %d -> %d", size, got)
	}
}

// TestClientClosedTyped pins the typed close error: calls racing or
// following the caller's own Close fail with ErrClientClosed (a caller
// bug), never a bare connection error.
func TestClientClosedTyped(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 16})
	addr := startServer(t, f)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	closedErrs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, unitSize)
			for i := 0; ; i++ {
				if err := c.Read((g*31+i)%c.Capacity(), buf); err != nil {
					closedErrs <- err
					return
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	c.Close()
	wg.Wait()
	close(closedErrs)
	for err := range closedErrs {
		if !errors.Is(err, serve.ErrClientClosed) {
			t.Fatalf("in-flight call after Close: got %v, want ErrClientClosed", err)
		}
	}
	// New calls after Close are typed too.
	if err := c.Read(0, make([]byte, unitSize)); !errors.Is(err, serve.ErrClientClosed) {
		t.Fatalf("call after Close: got %v, want ErrClientClosed", err)
	}
}

// TestServerDeathMidPipeline kills the server under a pipeline of
// in-flight requests: every call must fail promptly with a transport
// error — NOT ErrClientClosed, which is reserved for the caller's own
// Close — and the client must leak no goroutines.
func TestServerDeathMidPipeline(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(f)
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()

	before := runtime.NumGoroutine()
	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	started := make(chan struct{}, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, unitSize)
			for i := 0; ; i++ {
				if err := c.Read((g*17+i)%c.Capacity(), buf); err != nil {
					errs <- err
					return
				}
				if i == 0 {
					started <- struct{}{}
				}
			}
		}(g)
	}
	// Every pipeline lane has completed at least one request; kill the
	// server mid-traffic.
	for g := 0; g < 16; g++ {
		<-started
	}
	srv.Close()
	<-serveDone

	// No call may hang: all 16 lanes must fail out.
	fell := make(chan struct{})
	go func() { wg.Wait(); close(fell) }()
	select {
	case <-fell:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight calls still blocked 10s after server death")
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if errors.Is(err, serve.ErrClientClosed) {
			t.Fatalf("server death surfaced as ErrClientClosed: %v", err)
		}
	}
	if n != 16 {
		t.Fatalf("%d of 16 lanes reported an error", n)
	}
	// The poisoned client keeps failing with the transport error.
	if err := c.Read(0, make([]byte, unitSize)); err == nil || errors.Is(err, serve.ErrClientClosed) {
		t.Fatalf("post-death call: got %v, want sticky transport error", err)
	}

	// The client reader goroutine must have exited: the goroutine count
	// returns to the pre-Dial baseline (with slack for test runtime
	// bookkeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before dial, %d after server death", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
