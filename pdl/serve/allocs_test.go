//go:build !race

// The allocs regression gate (CI) for the serving front end: the
// steady-state synchronous request path (Do/Read/Write against a warm
// frontend) is allocation-bounded at zero per request — requests, batch
// slices, and executor scratch all recycle through pools. A regression
// fails `go test`. Excluded under -race: sync.Pool randomly drops items
// under the race detector.

package serve_test

import (
	"context"
	"testing"

	"repro/pdl/serve"
)

func TestServeHotPathAllocs(t *testing.T) {
	const unitSize = 1024
	f := mustFrontend(t, 17, 4, 4, unitSize, serve.Config{FlushDelay: -1})
	ctx := context.Background()
	src := make([]byte, unitSize)
	dst := make([]byte, unitSize)
	capacity := f.Store().Capacity()
	i := 0
	for w := 0; w < 64; w++ {
		if err := f.Write(ctx, w%capacity, src); err != nil {
			t.Fatal(err)
		}
		if err := f.Read(ctx, w%capacity, dst); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := f.Write(ctx, i%capacity, src); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Errorf("serve Write allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := f.Read(ctx, i%capacity, dst); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Errorf("serve Read allocates %v/op, want 0", n)
	}
}

// TestTCPHotPathAllocs gates the full network path: a synchronous unit
// write and read over a real localhost TCP connection — client encode,
// writev, server decode into pooled frame buffers, store pass, pooled
// response, client demux into the caller's buffer — must stay at ≤1
// allocation per operation end to end (AllocsPerRun counts every
// goroutine: both client loops, both server loops, and the frontend).
func TestTCPHotPathAllocs(t *testing.T) {
	const unitSize = 1024
	f := mustFrontend(t, 17, 4, 4, unitSize, serve.Config{FlushDelay: -1})
	addr := startServer(t, f)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	src := make([]byte, unitSize)
	dst := make([]byte, unitSize)
	capacity := c.Capacity()
	// Warm every pool on every connection's loops.
	for w := 0; w < 256; w++ {
		if err := c.Write(w%capacity, src); err != nil {
			t.Fatal(err)
		}
		if err := c.Read(w%capacity, dst); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if n := testing.AllocsPerRun(400, func() {
		if err := c.Write(i%capacity, src); err != nil {
			t.Fatal(err)
		}
		i++
	}); n > 1 {
		t.Errorf("TCP Write allocates %v/op, want <=1", n)
	}
	if n := testing.AllocsPerRun(400, func() {
		if err := c.Read(i%capacity, dst); err != nil {
			t.Fatal(err)
		}
		i++
	}); n > 1 {
		t.Errorf("TCP Read allocates %v/op, want <=1", n)
	}
}
