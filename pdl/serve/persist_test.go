package serve_test

import (
	"bytes"
	"math/rand"
	"net"
	"testing"

	"repro/pdl/serve"
	"repro/pdl/store/array"
)

// arrayServer is one "process lifetime" of a durable server: a frontend
// and TCP server over an opened array.
type arrayServer struct {
	arr   *array.Array
	front *serve.Frontend
	srv   *serve.Server
	addr  string
}

func startArrayServer(t *testing.T, arr *array.Array) *arrayServer {
	t.Helper()
	front := serve.New(arr.Store(), serve.Config{QueueDepth: 32})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(front)
	srv.FailDisk = arr.Fail
	srv.RebuildDisk = func() error { _, err := arr.Rebuild(); return err }
	go srv.Serve(ln)
	return &arrayServer{arr: arr, front: front, srv: srv, addr: ln.Addr().String()}
}

// kill tears the server down the way a crash would leave the array: the
// network and batcher stop, but the array is never Closed or Synced —
// reopening must rely only on the bytes and manifest already on disk.
func (as *arrayServer) kill() {
	as.srv.Close()
	as.front.Close()
}

// TestServePersistenceAcrossRestart is the acceptance walkthrough as an
// automated test: init an on-disk array, serve it over TCP, write
// through the client (spans included), fail a disk over the wire, kill
// the server, serve the same directory again — the bytes and the
// degraded state must come back — then rebuild over the wire, kill and
// reopen once more, and verify the healthy array. Runs for both
// persistent backends.
func TestServePersistenceAcrossRestart(t *testing.T) {
	for _, kind := range []array.BackendKind{array.File, array.Mmap} {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			arr, err := array.Create(dir, array.CreateOptions{V: 13, K: 4, Copies: 2, UnitSize: 64, Backend: kind})
			if err != nil {
				t.Fatal(err)
			}
			as := startArrayServer(t, arr)
			c, err := serve.Dial(as.addr)
			if err != nil {
				t.Fatal(err)
			}
			size := c.Size()
			unit := c.UnitSize()
			mirror := make([]byte, size)
			rand.New(rand.NewSource(11)).Read(mirror)

			// Fill the whole array through the striped span path, then
			// overwrite an unaligned slice so RMW edges persist too.
			if n, err := c.WriteAt(mirror, 0); err != nil || int64(n) != size {
				t.Fatalf("fill: n=%d err=%v", n, err)
			}
			patch := []byte("durable parity declustering")
			patchOff := int64(3*unit + 17)
			if _, err := c.WriteAt(patch, patchOff); err != nil {
				t.Fatal(err)
			}
			copy(mirror[patchOff:], patch)

			// Fail a disk over the wire: scrubbed on disk, recorded in the
			// manifest via the server's FailDisk hook.
			if err := c.Fail(5); err != nil {
				t.Fatal(err)
			}
			c.Close()
			as.kill()

			// Restart 1: reopen the directory; degraded state and bytes
			// must have survived the kill.
			arr2, err := array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			if arr2.Store().Failed() != 5 {
				t.Fatalf("restart forgot degraded state: Failed() = %d, want 5", arr2.Store().Failed())
			}
			as2 := startArrayServer(t, arr2)
			c2, err := serve.Dial(as2.addr)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Failed() != 5 {
				t.Fatalf("handshake Failed = %d, want 5", c2.Failed())
			}
			got := make([]byte, size)
			if _, err := c2.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror) {
				t.Fatal("degraded bytes diverge after restart")
			}

			// More writes while degraded, then rebuild over the wire (the
			// RebuildDisk hook renames the reconstruction into place and
			// records it), and kill again.
			if _, err := c2.WriteAt(patch, size-int64(len(patch))); err != nil {
				t.Fatal(err)
			}
			copy(mirror[size-int64(len(patch)):], patch)
			if err := c2.Rebuild(); err != nil {
				t.Fatal(err)
			}
			c2.Close()
			as2.kill()

			// Restart 2: healthy, history recorded, every byte intact.
			arr3, err := array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer arr3.Close()
			if arr3.Store().Failed() != -1 {
				t.Fatalf("after rebuild+restart: Failed() = %d, want -1", arr3.Store().Failed())
			}
			if m := arr3.Manifest(); m.Disks[5].State != array.DiskRebuilt {
				t.Fatalf("rebuild history lost: disk 5 state %q", m.Disks[5].State)
			}
			as3 := startArrayServer(t, arr3)
			defer as3.kill()
			c3, err := serve.Dial(as3.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c3.Close()
			if _, err := c3.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror) {
				t.Fatal("healthy bytes diverge after second restart")
			}
			if err := arr3.Store().VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
