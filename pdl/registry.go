package pdl

import (
	"fmt"
	"sort"
	"sync"

	"repro/pdl/layout"
)

// Constructor builds a layout for (v, k) honoring the resolved Options.
// It returns the layout and a human-readable method tag (e.g.
// "stairway(q=16)") that Build surfaces as Result.Method.
type Constructor func(v, k int, o *Options) (*layout.Layout, string, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Constructor{}
)

// RegisterMethod adds a construction method to the registry under a
// unique name, making it addressable via WithMethod without any facade
// changes. It fails on an empty name, a nil constructor, or a duplicate
// registration.
func RegisterMethod(name string, fn Constructor) error {
	if name == "" {
		return fmt.Errorf("pdl: RegisterMethod: empty name")
	}
	if fn == nil {
		return fmt.Errorf("pdl: RegisterMethod(%q): nil constructor", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("pdl: RegisterMethod(%q): already registered", name)
	}
	registry[name] = fn
	return nil
}

// Methods returns the names of all registered construction methods,
// sorted.
func Methods() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupMethod resolves a registered constructor.
func lookupMethod(name string) (Constructor, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	fn, ok := registry[name]
	return fn, ok
}

func mustRegister(name string, fn Constructor) {
	if err := RegisterMethod(name, fn); err != nil {
		panic(err)
	}
}
