// Package plan compiles logical disk-array operations into explicit
// physical I/O plans over a pdl.Mapper: which units to read, which to
// write, and in what order. A Plan is the unit of work a serving layer or
// simulator executes — the request logic of parity declustering (degraded
// reads over survivor XOR sets, read-modify-write parity updates, the
// Condition 5 large-write optimization, and per-stripe rebuild schedules)
// lives here once, instead of being re-implemented by every engine.
//
// Plans are flat step lists with barrier stages: every step in stage s may
// start only after all steps in stage s-1 finished (a small write's two
// writes wait for its two reads). Compilation is allocation-free in steady
// state: a Planner reuses its scratch buffers and appends steps into the
// caller's Plan, so a serving loop that recycles one Plan performs zero
// allocations per request.
package plan

import (
	"fmt"
	"strings"

	"repro/pdl"
	"repro/pdl/layout"
)

// Kind classifies a compiled plan.
type Kind int

const (
	// Read is a healthy one-unit read.
	Read Kind = iota

	// DegradedRead reads every surviving unit of the stripe (the XOR
	// survivor set) because the home unit's disk is down.
	DegradedRead

	// SmallWrite is the Figure 1 read-modify-write: read old data and old
	// parity, then write new data and new parity.
	SmallWrite

	// ReconstructWrite handles a small write whose data disk is down:
	// read the stripe's surviving data units, then write parity only.
	ReconstructWrite

	// DataOnlyWrite handles a small write whose parity disk is down:
	// write the data unit, nothing else to maintain.
	DataOnlyWrite

	// FullStripeWrite is the Condition 5 large-write optimization: parity
	// comes from the new data alone, so the whole stripe is written with
	// no pre-reads.
	FullStripeWrite

	// RebuildStripe reads every surviving unit of one stripe crossing a
	// failed disk, reconstructing that stripe's lost unit.
	RebuildStripe

	// DegradedWrite handles a small write whose data disk is down while
	// at least one more data unit of the same stripe is also down (only
	// possible with multi-parity codes): read every surviving unit —
	// data and parity — so the old value of the lost home unit can be
	// reconstructed, then apply the read-modify-write delta to every
	// surviving parity unit.
	DegradedWrite
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case DegradedRead:
		return "degraded-read"
	case SmallWrite:
		return "small-write"
	case ReconstructWrite:
		return "reconstruct-write"
	case DataOnlyWrite:
		return "data-only-write"
	case FullStripeWrite:
		return "full-stripe-write"
	case RebuildStripe:
		return "rebuild-stripe"
	case DegradedWrite:
		return "degraded-write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Step is one physical unit operation within a plan.
type Step struct {
	// Unit is the physical (disk, offset) position touched.
	layout.Unit

	// Write distinguishes writes from reads.
	Write bool

	// Parity marks the step touching the stripe's parity unit, so a byte
	// executor can tell data payloads from the XOR checksum without
	// re-resolving the stripe.
	Parity bool

	// Stage is the barrier stage: the step may start once every step of
	// the previous stage completed. Steps are ordered by stage.
	Stage uint8
}

// Plan is a compiled physical I/O plan. The zero value is an empty plan;
// reusing one Plan across compilations reuses its step storage.
type Plan struct {
	// Kind classifies the operation the steps implement.
	Kind Kind

	// Logical is the logical address the plan serves (-1 for rebuild
	// stripe plans, which serve a whole stripe).
	Logical int

	// Stripe is the global index of the parity stripe the plan operates
	// on; byte executors key their per-stripe write locks on it.
	Stripe int

	// Target is the unit the plan reconstructs or cannot touch because
	// its disk is down: the lost home unit for DegradedRead,
	// ReconstructWrite and DegradedWrite, the (first) lost parity unit
	// for DataOnlyWrite, and the unit being rebuilt for RebuildStripe.
	// It is the zero Unit for healthy plans (Read, SmallWrite,
	// FullStripeWrite).
	Target layout.Unit

	// TargetShard is Target's erasure-code shard index within its stripe
	// (data units 0..k-1, parity unit j is k+j), or -1 when the plan has
	// no reconstruction target. Executors pass it straight to
	// code.Code.PlanReconstruct.
	TargetShard int

	// DataShards is the stripe's data unit count k, set on every plan
	// that touches parity (parity unit j carries shard index k+j, so
	// executors recover j as shard - k); 0 on plain Reads.
	DataShards int

	// Missing lists the stripe's failed erasure-code shard indices in
	// increasing order — the failure mask executors hand to
	// code.Code.PlanReconstruct. Populated for the same kinds as
	// DataShards; nil otherwise.
	Missing []int

	// Steps lists the unit operations in execution order (by stage).
	Steps []Step
}

// reset re-tags the plan and truncates its steps, keeping capacity.
func (p *Plan) reset(kind Kind, logical, stripe int) {
	p.Kind = kind
	p.Logical = logical
	p.Stripe = stripe
	p.Target = layout.Unit{}
	p.TargetShard = -1
	p.DataShards = 0
	p.Missing = p.Missing[:0]
	p.Steps = p.Steps[:0]
}

// Reads returns the number of read steps.
func (p *Plan) Reads() int {
	n := 0
	for i := range p.Steps {
		if !p.Steps[i].Write {
			n++
		}
	}
	return n
}

// Writes returns the number of write steps.
func (p *Plan) Writes() int { return len(p.Steps) - p.Reads() }

// Stages returns the number of barrier stages.
func (p *Plan) Stages() int {
	if len(p.Steps) == 0 {
		return 0
	}
	return int(p.Steps[len(p.Steps)-1].Stage) + 1
}

// String renders the plan for tracing: kind, logical address, and the
// steps grouped by stage.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", p.Kind)
	if p.Logical >= 0 {
		fmt.Fprintf(&b, " logical %d", p.Logical)
	}
	if len(p.Steps) == 0 {
		b.WriteString(": no steps")
		return b.String()
	}
	cur := -1
	for _, s := range p.Steps {
		if int(s.Stage) != cur {
			cur = int(s.Stage)
			fmt.Fprintf(&b, "\n  stage %d:", cur)
		}
		op := "read"
		if s.Write {
			op = "write"
		}
		fmt.Fprintf(&b, " %s(d%d,o%d)", op, s.Disk, s.Offset)
	}
	return b.String()
}

// Planner compiles logical operations against one Mapper. A Planner
// reuses internal scratch space, so it is NOT safe for concurrent use;
// create one per serving goroutine (they share the read-only Mapper).
type Planner struct {
	m    pdl.Mapper
	buf  []layout.Unit
	pbuf []layout.Unit
	fbuf [1]int
}

// NewPlanner returns a plan compiler over a Mapper.
func NewPlanner(m pdl.Mapper) *Planner {
	if m == nil {
		panic("plan: NewPlanner: nil Mapper")
	}
	return &Planner{m: m}
}

// Mapper returns the Mapper plans are compiled against.
func (p *Planner) Mapper() pdl.Mapper { return p.m }

// checkFailed validates a failed-disk argument (-1 = healthy array).
func (p *Planner) checkFailed(op string, failed int) error {
	if failed < -1 || failed >= p.m.Disks() {
		return fmt.Errorf("plan: %s: failed disk %d outside [-1,%d)", op, failed, p.m.Disks())
	}
	return nil
}

// checkFailedSet validates a failed-disk set: in-range, strictly
// increasing (sorted, no duplicates). An empty or nil set is a healthy
// array.
func (p *Planner) checkFailedSet(op string, failed []int) error {
	prev := -1
	for _, f := range failed {
		if f < 0 || f >= p.m.Disks() {
			return fmt.Errorf("plan: %s: failed disk %d outside [0,%d)", op, f, p.m.Disks())
		}
		if f <= prev {
			return fmt.Errorf("plan: %s: failed disks %v not sorted and distinct", op, failed)
		}
		prev = f
	}
	return nil
}

// one adapts a single-failure argument (-1 = healthy) to a failed set,
// reusing the planner's one-element buffer.
func (p *Planner) one(failed int) []int {
	if failed < 0 {
		return nil
	}
	p.fbuf[0] = failed
	return p.fbuf[:1]
}

// down reports whether a disk is in the (small) failed set.
func down(disk int, failed []int) bool {
	for _, f := range failed {
		if f == disk {
			return true
		}
	}
	return false
}

// setStripeMeta fills the reconstruction metadata of a stripe-resolving
// plan: the data shard count and the sorted failed-shard mask.
func (p *Planner) setStripeMeta(dst *Plan, units []layout.Unit, failed []int) {
	dst.DataShards = len(units) - p.m.ParityShards()
	for _, u := range units {
		if down(u.Disk, failed) {
			dst.Missing = append(dst.Missing, p.m.ShardAt(u))
		}
	}
	// Insertion sort: parity shards can precede data shards in stripe
	// order, and the code contract wants an increasing mask.
	ms := dst.Missing
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1] > ms[j]; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}

// Read compiles a one-unit read of a logical address into dst. With
// failed >= 0 and the address's home unit on that disk, the plan becomes
// a DegradedRead over the stripe's survivor set.
func (p *Planner) Read(logical, failed int, dst *Plan) error {
	if err := p.checkFailed("Read", failed); err != nil {
		return err
	}
	return p.ReadM(logical, p.one(failed), dst)
}

// ReadM is Read against a set of simultaneously failed disks (sorted,
// distinct; nil or empty = healthy). When the home unit survives, the
// plan is a plain Read regardless of other failures; when it is lost,
// the DegradedRead lists every surviving unit of the stripe — the
// executor weighs them with the erasure code's reconstruction
// coefficients (skipping zero-weight units), using the plan's
// TargetShard, DataShards and Missing metadata.
func (p *Planner) ReadM(logical int, failed []int, dst *Plan) error {
	if err := p.checkFailedSet("Read", failed); err != nil {
		return err
	}
	stripe, home, err := p.m.StripeOf(logical)
	if err != nil {
		return err
	}
	if !down(home.Disk, failed) {
		dst.reset(Read, logical, stripe)
		dst.Steps = append(dst.Steps, Step{Unit: home})
		return nil
	}
	units, err := p.m.AppendStripeUnits(p.buf[:0], stripe)
	p.buf = units[:0]
	if err != nil {
		return err
	}
	dst.reset(DegradedRead, logical, stripe)
	dst.Target = home
	dst.TargetShard = p.m.ShardAt(home)
	p.setStripeMeta(dst, units, failed)
	k := dst.DataShards
	for _, u := range units {
		if down(u.Disk, failed) {
			continue
		}
		dst.Steps = append(dst.Steps, Step{Unit: u, Parity: p.m.ShardAt(u) >= k})
	}
	return nil
}

// Write compiles a small write of a logical address into dst: the
// read-modify-write of data and parity, or its degraded variants
// (ReconstructWrite when the data disk is down, DataOnlyWrite when the
// parity disk is down).
func (p *Planner) Write(logical, failed int, dst *Plan) error {
	if err := p.checkFailed("Write", failed); err != nil {
		return err
	}
	return p.WriteM(logical, p.one(failed), dst)
}

// WriteM is Write against a set of simultaneously failed disks (sorted,
// distinct). The compiled kind depends on which of the stripe's units
// survive:
//
//   - home alive, at least one parity alive: SmallWrite reading and
//     rewriting the home unit and every surviving parity unit;
//   - home alive, every parity lost: DataOnlyWrite;
//   - home lost, every other data unit alive: ReconstructWrite reading
//     the surviving data units and rewriting the surviving parity units
//     from scratch;
//   - home lost along with another data unit (multi-parity only):
//     DegradedWrite reading every surviving unit — the old home payload
//     is reconstructed to form the parity delta — and rewriting the
//     surviving parity units.
func (p *Planner) WriteM(logical int, failed []int, dst *Plan) error {
	if err := p.checkFailedSet("Write", failed); err != nil {
		return err
	}
	stripe, home, err := p.m.StripeOf(logical)
	if err != nil {
		return err
	}
	par, err := p.m.AppendParityUnits(p.pbuf[:0], stripe)
	p.pbuf = par[:0]
	if err != nil {
		return err
	}
	if !down(home.Disk, failed) {
		alive := 0
		for _, pu := range par {
			if !down(pu.Disk, failed) {
				alive++
			}
		}
		if alive == 0 {
			dst.reset(DataOnlyWrite, logical, stripe)
			dst.Target = par[0]
			dst.TargetShard = p.m.ShardAt(par[0])
			dst.DataShards = p.m.ShardAt(par[0])
			dst.Steps = append(dst.Steps, Step{Unit: home, Write: true})
			return nil
		}
		dst.reset(SmallWrite, logical, stripe)
		dst.DataShards = p.m.ShardAt(par[0])
		dst.Steps = append(dst.Steps, Step{Unit: home})
		for _, pu := range par {
			if !down(pu.Disk, failed) {
				dst.Steps = append(dst.Steps, Step{Unit: pu, Parity: true})
			}
		}
		dst.Steps = append(dst.Steps, Step{Unit: home, Write: true, Stage: 1})
		for _, pu := range par {
			if !down(pu.Disk, failed) {
				dst.Steps = append(dst.Steps, Step{Unit: pu, Write: true, Parity: true, Stage: 1})
			}
		}
		return nil
	}

	// Home is lost: resolve the whole stripe to find what else is down.
	units, err := p.m.AppendStripeUnits(p.buf[:0], stripe)
	p.buf = units[:0]
	if err != nil {
		return err
	}
	k := len(units) - p.m.ParityShards()
	dataDown := 0 // includes the home unit
	for _, u := range units {
		if down(u.Disk, failed) && p.m.ShardAt(u) < k {
			dataDown++
		}
	}
	if dataDown <= 1 {
		// Reconstruct-write: every other data unit survives, so the new
		// parity values follow from the surviving data plus the payload.
		dst.reset(ReconstructWrite, logical, stripe)
	} else {
		// Another data unit is also lost: the executor must reconstruct
		// the old home payload first, so it reads parity units too.
		dst.reset(DegradedWrite, logical, stripe)
	}
	dst.Target = home
	dst.TargetShard = p.m.ShardAt(home)
	p.setStripeMeta(dst, units, failed)
	for _, u := range units {
		if down(u.Disk, failed) {
			continue
		}
		if dst.Kind == ReconstructWrite && p.m.ShardAt(u) >= k {
			continue
		}
		dst.Steps = append(dst.Steps, Step{Unit: u, Parity: p.m.ShardAt(u) >= k})
	}
	for _, pu := range par {
		if !down(pu.Disk, failed) {
			dst.Steps = append(dst.Steps, Step{Unit: pu, Write: true, Parity: true, Stage: 1})
		}
	}
	return nil
}

// FullStripeWrite compiles a large write covering every data unit of the
// stripe holding logical (Condition 5): the stripe's units are written
// with no pre-reads, skipping the failed disk when one is down.
func (p *Planner) FullStripeWrite(logical, failed int, dst *Plan) error {
	if err := p.checkFailed("FullStripeWrite", failed); err != nil {
		return err
	}
	return p.FullStripeWriteM(logical, p.one(failed), dst)
}

// FullStripeWriteM is FullStripeWrite against a set of simultaneously
// failed disks (sorted, distinct): units on failed disks are skipped.
func (p *Planner) FullStripeWriteM(logical int, failed []int, dst *Plan) error {
	if err := p.checkFailedSet("FullStripeWrite", failed); err != nil {
		return err
	}
	stripe, _, err := p.m.StripeOf(logical)
	if err != nil {
		return err
	}
	units, err := p.m.AppendStripeUnits(p.buf[:0], stripe)
	p.buf = units[:0]
	if err != nil {
		return err
	}
	dst.reset(FullStripeWrite, logical, stripe)
	p.setStripeMeta(dst, units, failed)
	k := dst.DataShards
	for _, u := range units {
		if down(u.Disk, failed) {
			continue
		}
		dst.Steps = append(dst.Steps, Step{Unit: u, Write: true, Parity: p.m.ShardAt(u) >= k})
	}
	return nil
}

// Rebuild compiles the full reconstruction schedule for a failed disk:
// one RebuildStripe plan per stripe crossing it, in disk-scan order, plus
// the per-disk read counts the schedule induces — the reconstruction-
// workload balance the paper's Condition 3 governs.
func (p *Planner) Rebuild(failed int) (*Rebuild, error) {
	if failed < 0 || failed >= p.m.Disks() {
		return nil, fmt.Errorf("plan: Rebuild: failed disk %d outside [0,%d)", failed, p.m.Disks())
	}
	return p.RebuildM(failed, p.one(failed))
}

// RebuildM compiles the reconstruction schedule for one disk of a failed
// set: target names the disk being rebuilt, failed the complete sorted
// set of down disks (which must contain target). Steps read only
// surviving units; the executor weighs them with the erasure code's
// reconstruction coefficients, so with extra parity in the stripe some
// reads carry zero weight and are skipped at execution time.
func (p *Planner) RebuildM(target int, failed []int) (*Rebuild, error) {
	if err := p.checkFailedSet("Rebuild", failed); err != nil {
		return nil, err
	}
	if target < 0 || target >= p.m.Disks() {
		return nil, fmt.Errorf("plan: Rebuild: failed disk %d outside [0,%d)", target, p.m.Disks())
	}
	if !down(target, failed) {
		return nil, fmt.Errorf("plan: Rebuild: target disk %d not in failed set %v", target, failed)
	}
	rb := &Rebuild{Failed: target, Reads: make([]int64, p.m.Disks())}
	for s := 0; s < p.m.Stripes(); s++ {
		units, err := p.m.AppendStripeUnits(p.buf[:0], s)
		p.buf = units[:0]
		if err != nil {
			return nil, err
		}
		var lost layout.Unit
		crosses := false
		for _, u := range units {
			if u.Disk == target {
				lost = u
				crosses = true
				break
			}
		}
		if !crosses {
			continue
		}
		var pl Plan
		pl.reset(RebuildStripe, -1, s)
		pl.Target = lost
		pl.TargetShard = p.m.ShardAt(lost)
		p.setStripeMeta(&pl, units, failed)
		k := pl.DataShards
		for _, u := range units {
			if down(u.Disk, failed) {
				continue
			}
			pl.Steps = append(pl.Steps, Step{Unit: u, Parity: p.m.ShardAt(u) >= k})
			rb.Reads[u.Disk]++
		}
		rb.Plans = append(rb.Plans, pl)
	}
	return rb, nil
}

// Rebuild is a compiled reconstruction schedule for one failed disk.
type Rebuild struct {
	// Failed is the disk being reconstructed.
	Failed int

	// Plans holds one RebuildStripe plan per stripe crossing the failed
	// disk, in disk-scan order (copy by copy, stripe by stripe).
	Plans []Plan

	// Reads[d] is the number of unit reads the schedule issues to disk d.
	Reads []int64
}

// MaxSurvivorReads returns the bottleneck read count over surviving
// disks: it determines rebuild time when disks run in parallel.
func (r *Rebuild) MaxSurvivorReads() int64 {
	var max int64
	for d, n := range r.Reads {
		if d != r.Failed && n > max {
			max = n
		}
	}
	return max
}

// Balance returns the minimum and maximum read counts over surviving
// disks — equal under the paper's Condition 3 (every surviving disk
// contributes the same reconstruction workload).
func (r *Rebuild) Balance() (min, max int64) {
	first := true
	for d, n := range r.Reads {
		if d == r.Failed {
			continue
		}
		if first {
			min, max = n, n
			first = false
			continue
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}
