package plan_test

import (
	"testing"

	"repro/pdl"
	"repro/pdl/plan"
)

// rs2Mapper builds the mapper for a two-parity layout.
func rs2Mapper(t *testing.T, v, k int) pdl.Mapper {
	t.Helper()
	res, err := pdl.Build(v, k, pdl.WithParityShards(2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// stripeDisks resolves the stripe of a logical address into the disks
// holding its data and parity shards.
func stripeDisks(t *testing.T, m pdl.Mapper, logical int) (stripe int, dataDisks, parityDisks []int) {
	t.Helper()
	stripe, _, err := m.StripeOf(logical)
	if err != nil {
		t.Fatal(err)
	}
	units, err := m.AppendStripeUnits(nil, stripe)
	if err != nil {
		t.Fatal(err)
	}
	k := len(units) - m.ParityShards()
	for _, u := range units {
		if m.ShardAt(u) >= k {
			parityDisks = append(parityDisks, u.Disk)
		} else {
			dataDisks = append(dataDisks, u.Disk)
		}
	}
	return stripe, dataDisks, parityDisks
}

// TestReadMTwoFailures pins the degraded-read plan with two disks down:
// the plan must expose the stripe's failed shard mask and reconstruction
// target so executors can run the code's recovery arithmetic, and read
// only surviving units.
func TestReadMTwoFailures(t *testing.T) {
	m := rs2Mapper(t, 9, 4)
	pln := plan.NewPlanner(m)
	_, home, err := m.StripeOf(0)
	if err != nil {
		t.Fatal(err)
	}
	_, dataDisks, parityDisks := stripeDisks(t, m, 0)

	// Fail the home disk plus one parity disk of the same stripe.
	failed := []int{home.Disk, parityDisks[0]}
	if failed[0] > failed[1] {
		failed[0], failed[1] = failed[1], failed[0]
	}
	var p plan.Plan
	if err := pln.ReadM(0, failed, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.DegradedRead {
		t.Fatalf("kind %v, want DegradedRead", p.Kind)
	}
	homeShard := m.ShardAt(home)
	if p.TargetShard != homeShard {
		t.Errorf("TargetShard = %d, want home shard %d", p.TargetShard, homeShard)
	}
	if p.DataShards != len(dataDisks) {
		t.Errorf("DataShards = %d, want %d", p.DataShards, len(dataDisks))
	}
	if len(p.Missing) != 2 {
		t.Fatalf("Missing = %v, want 2 entries", p.Missing)
	}
	if p.Missing[0] >= p.Missing[1] {
		t.Errorf("Missing %v not sorted", p.Missing)
	}
	foundTarget := false
	for _, sh := range p.Missing {
		if sh == homeShard {
			foundTarget = true
		}
	}
	if !foundTarget {
		t.Errorf("Missing %v lacks the target shard %d", p.Missing, homeShard)
	}
	for _, st := range p.Steps {
		if st.Write {
			t.Errorf("degraded read plans a write: %+v", st)
		}
		for _, f := range failed {
			if st.Disk == f {
				t.Errorf("degraded read touches failed disk %d: %+v", f, st)
			}
		}
	}

	// Failing more disks than the code's parity shards in one stripe is
	// only detectable at execution (the plan layer is code-agnostic about
	// which shards a code can rebuild), but the failed-set validation
	// itself must reject unsorted and duplicate sets.
	if err := pln.ReadM(0, []int{3, 1}, &p); err == nil {
		t.Error("unsorted failed set accepted")
	}
	if err := pln.ReadM(0, []int{1, 1}, &p); err == nil {
		t.Error("duplicate failed set accepted")
	}
}

// TestWriteMTwoFailureShapes pins the write-plan shapes unique to
// multi-parity layouts: a SmallWrite updates EVERY surviving parity
// unit; losing one data peer puts the home write into DegradedWrite
// (reads all survivors including parity); losing both parity disks of
// the stripe degenerates to DataOnlyWrite.
func TestWriteMTwoFailureShapes(t *testing.T) {
	m := rs2Mapper(t, 9, 4)
	pln := plan.NewPlanner(m)
	_, home, err := m.StripeOf(0)
	if err != nil {
		t.Fatal(err)
	}
	_, dataDisks, parityDisks := stripeDisks(t, m, 0)
	k := len(dataDisks)

	// Healthy SmallWrite: reads home + both parity units, writes them back.
	var p plan.Plan
	if err := pln.WriteM(0, nil, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.SmallWrite || p.Reads() != 3 || p.Writes() != 3 {
		t.Fatalf("healthy small write: kind %v reads %d writes %d, want SmallWrite 3 3", p.Kind, p.Reads(), p.Writes())
	}
	if p.DataShards != k {
		t.Errorf("DataShards = %d, want %d", p.DataShards, k)
	}
	parityWrites := 0
	for _, st := range p.Steps {
		if st.Write && st.Parity {
			parityWrites++
		}
	}
	if parityWrites != 2 {
		t.Errorf("small write updates %d parity units, want 2", parityWrites)
	}

	// One parity disk down: still a SmallWrite, now updating only the
	// surviving parity unit.
	if err := pln.WriteM(0, []int{parityDisks[0]}, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.SmallWrite || p.Writes() != 2 {
		t.Fatalf("one-parity-down small write: kind %v writes %d", p.Kind, p.Writes())
	}

	// Home plus a data peer down: DegradedWrite — reconstruct the old
	// home from ALL survivors (parity included), then delta-update the
	// surviving parity units.
	peer := -1
	for _, d := range dataDisks {
		if d != home.Disk {
			peer = d
			break
		}
	}
	failed := []int{home.Disk, peer}
	if failed[0] > failed[1] {
		failed[0], failed[1] = failed[1], failed[0]
	}
	if err := pln.WriteM(0, failed, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.DegradedWrite {
		t.Fatalf("home+peer down: kind %v, want DegradedWrite", p.Kind)
	}
	if p.TargetShard != m.ShardAt(home) || len(p.Missing) != 2 {
		t.Errorf("DegradedWrite TargetShard=%d Missing=%v", p.TargetShard, p.Missing)
	}
	if p.Writes() != 2 {
		t.Errorf("DegradedWrite writes %d units, want both surviving parity units", p.Writes())
	}
	readsParity := 0
	for _, st := range p.Steps {
		if !st.Write && st.Parity {
			readsParity++
		}
		for _, f := range failed {
			if st.Disk == f {
				t.Errorf("DegradedWrite touches failed disk %d: %+v", f, st)
			}
		}
	}
	if readsParity != 2 {
		t.Errorf("DegradedWrite reads %d parity units, want 2 (old values feed the delta update)", readsParity)
	}

	// Both parity disks down: nothing to maintain — DataOnlyWrite.
	failed = []int{parityDisks[0], parityDisks[1]}
	if failed[0] > failed[1] {
		failed[0], failed[1] = failed[1], failed[0]
	}
	if err := pln.WriteM(0, failed, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.DataOnlyWrite || p.Writes() != 1 || p.Reads() != 0 {
		t.Fatalf("both parity down: kind %v reads %d writes %d, want DataOnlyWrite 0 1", p.Kind, p.Reads(), p.Writes())
	}
}

// TestRebuildMTwoFailures pins the rebuild schedule with a second disk
// down: per-stripe plans must carry the full missing-shard mask and only
// read surviving units.
func TestRebuildMTwoFailures(t *testing.T) {
	m := rs2Mapper(t, 9, 4)
	pln := plan.NewPlanner(m)
	rb, err := pln.RebuildM(0, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Plans) == 0 {
		t.Fatal("no rebuild plans for disk 0")
	}
	for i := range rb.Plans {
		p := &rb.Plans[i]
		if p.Kind != plan.RebuildStripe {
			t.Fatalf("plan %d kind %v", i, p.Kind)
		}
		if p.Target.Disk != 0 {
			t.Errorf("plan %d target on disk %d, want 0", i, p.Target.Disk)
		}
		if p.TargetShard < 0 || p.DataShards < 1 {
			t.Errorf("plan %d missing shard metadata: target %d k %d", i, p.TargetShard, p.DataShards)
		}
		for _, st := range p.Steps {
			if st.Disk == 0 || st.Disk == 4 {
				t.Errorf("plan %d reads failed disk %d", i, st.Disk)
			}
		}
		for j := 1; j < len(p.Missing); j++ {
			if p.Missing[j-1] >= p.Missing[j] {
				t.Errorf("plan %d Missing %v not sorted", i, p.Missing)
			}
		}
	}
	// The rebuild target must be in the failed set.
	if _, err := pln.RebuildM(2, []int{0, 4}); err == nil {
		t.Error("RebuildM with target outside the failed set accepted")
	}
}
