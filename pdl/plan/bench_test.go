package plan_test

import (
	"testing"

	"repro/pdl"
	"repro/pdl/plan"
)

// benchPlanner builds the benchmark geometry: a (17, 4) ring layout
// tiled 4 copies per disk.
func benchPlanner(b *testing.B) (*plan.Planner, int) {
	b.Helper()
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, 4*res.Layout.Size)
	if err != nil {
		b.Fatal(err)
	}
	return plan.NewPlanner(m), m.DataUnits()
}

// BenchmarkPlanRead measures healthy read compilation into a reused
// Plan, 0 allocs/op.
func BenchmarkPlanRead(b *testing.B) {
	pln, n := benchPlanner(b)
	var p plan.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pln.Read(i%n, -1, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanDegradedRead measures degraded-read compilation (survivor
// XOR set) into a reused Plan, 0 allocs/op.
func BenchmarkPlanDegradedRead(b *testing.B) {
	pln, n := benchPlanner(b)
	var p plan.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pln.Read(i%n, 0, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSmallWrite measures read-modify-write compilation into a
// reused Plan, 0 allocs/op.
func BenchmarkPlanSmallWrite(b *testing.B) {
	pln, n := benchPlanner(b)
	var p plan.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pln.Write(i%n, -1, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanDegradedSmallWrite measures the degraded write variants
// (reconstruct-write and data-only-write mixed, depending on the
// address), 0 allocs/op.
func BenchmarkPlanDegradedSmallWrite(b *testing.B) {
	pln, n := benchPlanner(b)
	var p plan.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pln.Write(i%n, 0, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFullStripeWrite measures Condition 5 large-write
// compilation into a reused Plan, 0 allocs/op.
func BenchmarkPlanFullStripeWrite(b *testing.B) {
	pln, n := benchPlanner(b)
	var p plan.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pln.FullStripeWrite(i%n, -1, &p); err != nil {
			b.Fatal(err)
		}
	}
}
