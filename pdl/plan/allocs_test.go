//go:build !race

// The allocs regression gate (CI): plan compilation into a reused Plan
// promises zero allocations per request in steady state; a regression
// fails `go test`. Excluded under -race, whose instrumentation changes
// allocation behavior.

package plan_test

import (
	"testing"

	"repro/pdl"
	"repro/pdl/plan"
)

func TestPlannerHotPathAllocs(t *testing.T) {
	res, err := pdl.Build(17, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, 4*res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	var p plan.Plan
	i := 0
	assertZero := func(name string, f func()) {
		t.Helper()
		for w := 0; w < 8; w++ {
			f()
		}
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s allocates %v/op, want 0", name, n)
		}
	}
	assertZero("Read healthy", func() {
		if err := pln.Read(i%m.DataUnits(), -1, &p); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("Read degraded", func() {
		if err := pln.Read(i%m.DataUnits(), 3, &p); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("Write healthy", func() {
		if err := pln.Write(i%m.DataUnits(), -1, &p); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("Write degraded", func() {
		if err := pln.Write(i%m.DataUnits(), 3, &p); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("FullStripeWrite", func() {
		if err := pln.FullStripeWrite(i%m.DataUnits(), -1, &p); err != nil {
			t.Fatal(err)
		}
		i++
	})
}
