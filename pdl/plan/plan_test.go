package plan_test

import (
	"bytes"
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/plan"
)

// TestDegradedReadMatchesMapperAcrossMethods is the cross-layer property
// check: for every registered construction method across a (v, k) grid,
// the XOR set a DegradedRead plan reads must equal the survivor set
// Mapper.DegradedMap reports, and XOR-ing those units' bytes must
// reconstruct the lost unit's payload exactly.
func TestDegradedReadMatchesMapperAcrossMethods(t *testing.T) {
	vs := []int{5, 7, 8, 9, 13, 16}
	ks := []int{2, 3, 4}
	built := 0
	for _, method := range pdl.Methods() {
		for _, v := range vs {
			for _, k := range ks {
				if k > v {
					continue
				}
				res, err := pdl.Build(v, k, pdl.WithMethod(method))
				if err != nil {
					// Not every method realizes every (v, k); the grid
					// covers what the registry can build.
					continue
				}
				l := res.Layout
				if !l.ParityAssigned() || l.Size == 0 {
					continue
				}
				built++
				t.Run(res.Method, func(t *testing.T) {
					checkDegradedReads(t, l)
				})
			}
		}
	}
	if built < 10 {
		t.Fatalf("grid built only %d layouts; registry coverage regressed", built)
	}
}

// checkDegradedReads verifies, for a sample of logical addresses of a
// layout, that the DegradedRead plan equals the Mapper's survivor set and
// reconstructs correct bytes via the layout's XOR data engine.
func checkDegradedReads(t *testing.T, l *layout.Layout) {
	t.Helper()
	const unitSize = 8
	m, err := pdl.NewMapper(l, l.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	data, err := layout.NewData(l, unitSize)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct payload per logical unit so XOR mistakes cannot cancel.
	for i := 0; i < m.DataUnits(); i++ {
		payload := make([]byte, unitSize)
		for j := range payload {
			payload[j] = byte(i*31 + j*7 + 1)
		}
		if err := data.WriteLogical(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	stride := m.DataUnits()/40 + 1
	var p plan.Plan
	for logical := 0; logical < m.DataUnits(); logical += stride {
		home, err := m.Map(logical)
		if err != nil {
			t.Fatal(err)
		}
		failed := home.Disk
		if err := pln.Read(logical, failed, &p); err != nil {
			t.Fatal(err)
		}
		if p.Kind != plan.DegradedRead {
			t.Fatalf("logical %d: plan kind %v, want DegradedRead", logical, p.Kind)
		}
		dr, err := m.DegradedMap(logical, failed)
		if err != nil {
			t.Fatal(err)
		}
		if !dr.Degraded {
			t.Fatalf("logical %d: DegradedMap not degraded for home disk %d", logical, failed)
		}
		if len(p.Steps) != len(dr.Survivors) {
			t.Fatalf("logical %d: plan reads %d units, DegradedMap reports %d survivors",
				logical, len(p.Steps), len(dr.Survivors))
		}
		want := make([]byte, unitSize)
		for i, s := range p.Steps {
			if s.Write || s.Stage != 0 {
				t.Fatalf("logical %d: degraded read has non-read or staged step %+v", logical, s)
			}
			if s.Unit != dr.Survivors[i] {
				t.Fatalf("logical %d: plan step %d reads %v, survivor is %v",
					logical, i, s.Unit, dr.Survivors[i])
			}
			if s.Disk == failed {
				t.Fatalf("logical %d: plan reads the failed disk %d", logical, failed)
			}
			unit := data.DiskContents(s.Disk)[s.Offset*unitSize : (s.Offset+1)*unitSize]
			for j := range want {
				want[j] ^= unit[j]
			}
		}
		direct, err := data.ReadLogical(logical)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, direct) {
			t.Fatalf("logical %d: XOR of plan's survivor set %x != stored payload %x",
				logical, want, direct)
		}
		// A non-home failure must compile to a plain one-unit read.
		other := (failed + 1) % l.V
		if err := pln.Read(logical, other, &p); err != nil {
			t.Fatal(err)
		}
		if p.Kind != plan.Read || len(p.Steps) != 1 || p.Steps[0].Unit != home {
			t.Fatalf("logical %d: healthy-path plan %v reads %v, want single read of %v",
				logical, p.Kind, p.Steps, home)
		}
	}
}

// TestDegradedReadMatchesMapperWithCopies repeats the survivor-set
// equality on a multi-copy geometry (disk = 3 layout copies), where
// offsets must be copy-adjusted.
func TestDegradedReadMatchesMapperWithCopies(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	m, err := pdl.NewMapper(l, 3*l.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	var p plan.Plan
	for logical := 0; logical < m.DataUnits(); logical += 7 {
		home, err := m.Map(logical)
		if err != nil {
			t.Fatal(err)
		}
		if err := pln.Read(logical, home.Disk, &p); err != nil {
			t.Fatal(err)
		}
		dr, err := m.DegradedMap(logical, home.Disk)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Steps) != len(dr.Survivors) {
			t.Fatalf("logical %d: %d steps vs %d survivors", logical, len(p.Steps), len(dr.Survivors))
		}
		for i, s := range p.Steps {
			if s.Unit != dr.Survivors[i] {
				t.Fatalf("logical %d: step %d %v != survivor %v", logical, i, s.Unit, dr.Survivors[i])
			}
			if s.Offset < 0 || s.Offset >= m.DiskUnits() {
				t.Fatalf("logical %d: offset %d outside disk", logical, s.Offset)
			}
		}
	}
}

// TestSmallWritePlanShape pins the Figure 1 read-modify-write structure:
// two reads in stage 0, two writes in stage 1, on the data and parity
// units.
func TestSmallWritePlanShape(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	var p plan.Plan
	if err := pln.Write(0, -1, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.SmallWrite || p.Reads() != 2 || p.Writes() != 2 || p.Stages() != 2 {
		t.Fatalf("small write plan: kind %v reads %d writes %d stages %d", p.Kind, p.Reads(), p.Writes(), p.Stages())
	}
	stripe, home, err := m.StripeOf(0)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := m.ParityOf(stripe)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Unit != home || p.Steps[1].Unit != parity {
		t.Errorf("stage 0 reads %v,%v, want home %v parity %v", p.Steps[0].Unit, p.Steps[1].Unit, home, parity)
	}
	if p.Steps[2].Unit != home || !p.Steps[2].Write || p.Steps[3].Unit != parity || !p.Steps[3].Write {
		t.Errorf("stage 1 not writes of home+parity: %+v", p.Steps[2:])
	}
	// Byte-executor metadata: the stripe index and the parity marks.
	if p.Stripe != stripe {
		t.Errorf("plan stripe %d, want %d", p.Stripe, stripe)
	}
	for i, s := range p.Steps {
		if s.Parity != (s.Unit == parity) {
			t.Errorf("step %d parity mark %v for unit %v (parity is %v)", i, s.Parity, s.Unit, parity)
		}
	}
}

// TestWriteDegradedVariants pins the two degraded small-write shapes:
// data disk down => ReconstructWrite (reads then a parity write); parity
// disk down => DataOnlyWrite (single data write).
func TestWriteDegradedVariants(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	stripe, home, err := m.StripeOf(0)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := m.ParityOf(stripe)
	if err != nil {
		t.Fatal(err)
	}

	var p plan.Plan
	if err := pln.Write(0, home.Disk, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.ReconstructWrite {
		t.Fatalf("data-disk failure: kind %v", p.Kind)
	}
	if p.Writes() != 1 || p.Steps[len(p.Steps)-1].Unit != parity || !p.Steps[len(p.Steps)-1].Parity {
		t.Errorf("reconstruct-write should end with one marked parity write, got %+v", p.Steps)
	}
	for _, s := range p.Steps[:len(p.Steps)-1] {
		if s.Write || s.Disk == home.Disk || s.Unit == parity {
			t.Errorf("reconstruct-write pre-read %+v touches failed disk or parity", s)
		}
	}
	if p.Stripe != stripe || p.Target != home {
		t.Errorf("reconstruct-write stripe %d target %v, want %d, lost home %v", p.Stripe, p.Target, stripe, home)
	}

	if err := pln.Write(0, parity.Disk, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.DataOnlyWrite || len(p.Steps) != 1 || !p.Steps[0].Write || p.Steps[0].Unit != home {
		t.Fatalf("parity-disk failure: got %v %+v, want single write of %v", p.Kind, p.Steps, home)
	}
	if p.Stripe != stripe || p.Target != parity {
		t.Errorf("data-only write stripe %d target %v, want %d, lost parity %v", p.Stripe, p.Target, stripe, parity)
	}
}

// TestFullStripeWriteSkipsFailed checks the Condition 5 plan writes the
// whole stripe with no reads, dropping the failed disk's unit.
func TestFullStripeWriteSkipsFailed(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	var p plan.Plan
	if err := pln.FullStripeWrite(0, -1, &p); err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.FullStripeWrite || p.Reads() != 0 || p.Writes() != 3 {
		t.Fatalf("healthy full stripe: kind %v reads %d writes %d", p.Kind, p.Reads(), p.Writes())
	}
	failed := p.Steps[0].Disk
	if err := pln.FullStripeWrite(0, failed, &p); err != nil {
		t.Fatal(err)
	}
	if p.Writes() != 2 {
		t.Fatalf("degraded full stripe writes %d, want 2", p.Writes())
	}
	for _, s := range p.Steps {
		if s.Disk == failed {
			t.Errorf("degraded full stripe writes failed disk: %+v", s)
		}
	}
}

// TestRebuildBalance checks the compiled rebuild schedule against the
// paper's Condition 3 on a ring layout (perfect reconstruction-workload
// balance) and its read counts against the survivor fraction bound.
func TestRebuildBalance(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	m, err := pdl.NewMapper(l, l.Size)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := plan.NewPlanner(m).Rebuild(4)
	if err != nil {
		t.Fatal(err)
	}
	min, max := rb.Balance()
	if min != max {
		t.Errorf("ring layout rebuild imbalanced: [%d,%d]", min, max)
	}
	want := int64(l.Size * (3 - 1) / (9 - 1)) // (k-1)/(v-1) of each disk
	if rb.MaxSurvivorReads() != want {
		t.Errorf("max survivor reads %d, want %d", rb.MaxSurvivorReads(), want)
	}
	if rb.Reads[4] != 0 {
		t.Error("rebuild schedule reads the failed disk")
	}
	var total int64
	for _, p := range rb.Plans {
		if p.Kind != plan.RebuildStripe || p.Writes() != 0 {
			t.Fatalf("rebuild stripe plan %v has writes", p.Kind)
		}
		if p.Target.Disk != 4 {
			t.Fatalf("rebuild target %v not on failed disk 4", p.Target)
		}
		if p.Stripe < 0 || p.Stripe >= m.Stripes() {
			t.Fatalf("rebuild stripe index %d outside [0,%d)", p.Stripe, m.Stripes())
		}
		total += int64(len(p.Steps))
	}
	var sum int64
	for _, n := range rb.Reads {
		sum += n
	}
	if total != sum {
		t.Errorf("schedule step count %d != per-disk read sum %d", total, sum)
	}
	if _, err := plan.NewPlanner(m).Rebuild(9); err == nil {
		t.Error("out-of-range failed disk accepted")
	}
}

// TestPlannerValidatesFailed pins the failed-disk domain [-1, disks).
func TestPlannerValidatesFailed(t *testing.T) {
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	pln := plan.NewPlanner(m)
	var p plan.Plan
	for _, failed := range []int{-2, 9} {
		if err := pln.Read(0, failed, &p); err == nil {
			t.Errorf("Read accepted failed=%d", failed)
		}
		if err := pln.Write(0, failed, &p); err == nil {
			t.Errorf("Write accepted failed=%d", failed)
		}
		if err := pln.FullStripeWrite(0, failed, &p); err == nil {
			t.Errorf("FullStripeWrite accepted failed=%d", failed)
		}
	}
	if err := pln.Read(-1, -1, &p); err == nil {
		t.Error("negative logical accepted")
	}
}
