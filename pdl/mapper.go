package pdl

import (
	"fmt"

	"repro/pdl/layout"
)

// Mapper is the serving hot path: precomputed O(1) translation between
// logical data-unit addresses and physical (disk, offset) positions, with
// a degraded-mode variant for reads while a disk is down. Implementations
// are safe for concurrent readers once built.
type Mapper interface {
	// DataUnits returns the number of addressable logical data units.
	DataUnits() int

	// DiskUnits returns the configured disk size in units.
	DiskUnits() int

	// Map translates a logical address to its physical position: one
	// table lookup plus constant arithmetic (Condition 4).
	Map(logical int) (layout.Unit, error)

	// Logical inverts Map; ok is false for parity units or positions
	// outside the array.
	Logical(u layout.Unit) (int, bool)

	// DegradedMap resolves a logical address while disk failed is down.
	// When the home unit survives, it is returned directly; when it lived
	// on the failed disk, the surviving units of its stripe are returned
	// so the caller can reconstruct the payload by XOR.
	DegradedMap(logical, failed int) (DegradedRead, error)
}

// DegradedRead is the result of Mapper.DegradedMap.
type DegradedRead struct {
	// Unit is the home position of the logical address (on the failed
	// disk when Degraded).
	Unit layout.Unit

	// Degraded reports whether the home disk is the failed one.
	Degraded bool

	// Survivors holds, when Degraded, the stripe's surviving units
	// (including parity) whose XOR reconstructs the payload.
	Survivors []layout.Unit
}

// tableMapper implements Mapper over layout.Mapping's precomputed tables,
// baking in the disk geometry (validated once at construction, so the
// per-lookup path is table access plus constant arithmetic) and adding
// the degraded-mode stripe resolution.
type tableMapper struct {
	l           *layout.Layout
	m           *layout.Mapping
	diskUnits   int
	copies      int
	dataPerCopy int
	capacity    int
}

// NewMapper builds the lookup tables for a layout with fully assigned
// parity, for disks of diskUnits units (a positive multiple of the layout
// size; the layout tiles vertically).
func NewMapper(l *layout.Layout, diskUnits int) (Mapper, error) {
	if l.Size <= 0 {
		return nil, fmt.Errorf("pdl: NewMapper: layout size %d must be positive", l.Size)
	}
	if diskUnits <= 0 || diskUnits%l.Size != 0 {
		return nil, fmt.Errorf("pdl: NewMapper: disk size %d not a positive multiple of layout size %d", diskUnits, l.Size)
	}
	m, err := layout.NewMapping(l)
	if err != nil {
		return nil, fmt.Errorf("pdl: NewMapper: %w", err)
	}
	copies := diskUnits / l.Size
	return &tableMapper{
		l:           l,
		m:           m,
		diskUnits:   diskUnits,
		copies:      copies,
		dataPerCopy: m.DataUnits(),
		capacity:    m.DataUnits() * copies,
	}, nil
}

func (t *tableMapper) DataUnits() int { return t.capacity }

func (t *tableMapper) DiskUnits() int { return t.diskUnits }

func (t *tableMapper) Map(logical int) (layout.Unit, error) {
	if logical < 0 || logical >= t.capacity {
		return layout.Unit{}, fmt.Errorf("pdl: Map: logical %d outside [0,%d)", logical, t.capacity)
	}
	copyIdx := logical / t.dataPerCopy
	u := t.m.ForwardUnit(logical - copyIdx*t.dataPerCopy)
	u.Offset += copyIdx * t.l.Size
	return u, nil
}

func (t *tableMapper) Logical(u layout.Unit) (int, bool) {
	if u.Disk < 0 || u.Disk >= t.l.V || u.Offset < 0 || u.Offset >= t.diskUnits {
		return 0, false
	}
	copyIdx := u.Offset / t.l.Size
	base := t.m.LogicalIndex(u.Disk, u.Offset-copyIdx*t.l.Size)
	if base < 0 {
		return 0, false
	}
	return base + copyIdx*t.dataPerCopy, true
}

func (t *tableMapper) DegradedMap(logical, failed int) (DegradedRead, error) {
	if failed < 0 || failed >= t.l.V {
		return DegradedRead{}, fmt.Errorf("pdl: DegradedMap: failed disk %d outside [0,%d)", failed, t.l.V)
	}
	u, err := t.Map(logical)
	if err != nil {
		return DegradedRead{}, err
	}
	if u.Disk != failed {
		return DegradedRead{Unit: u}, nil
	}
	copyBase := (u.Offset / t.l.Size) * t.l.Size
	s := &t.l.Stripes[t.m.StripeAt(u)]
	survivors := make([]layout.Unit, 0, len(s.Units)-1)
	for _, su := range s.Units {
		if su.Disk == failed {
			continue
		}
		survivors = append(survivors, layout.Unit{Disk: su.Disk, Offset: su.Offset + copyBase})
	}
	return DegradedRead{Unit: u, Degraded: true, Survivors: survivors}, nil
}
