package pdl

import (
	"fmt"

	"repro/pdl/layout"
)

// Mapper is the serving hot path: precomputed O(1) translation between
// logical data-unit addresses and physical (disk, offset) positions, with
// degraded-mode variants for reads while a disk is down and the stripe
// lookups the pdl/plan compiler is built on. The Append* methods are the
// allocation-free forms: they append into a caller-owned slice and never
// allocate once that slice has capacity. Implementations are safe for
// concurrent readers once built.
type Mapper interface {
	// DataUnits returns the number of addressable logical data units.
	DataUnits() int

	// DiskUnits returns the configured disk size in units.
	DiskUnits() int

	// Disks returns the number of disks in the array.
	Disks() int

	// Stripes returns the total number of parity stripes across all
	// layout copies on the configured disks.
	Stripes() int

	// Map translates a logical address to its physical position: one
	// table lookup plus constant arithmetic (Condition 4).
	Map(logical int) (layout.Unit, error)

	// MapRange appends the physical positions of the n consecutive
	// logical addresses starting at logical to dst and returns the
	// extended slice: the batched, allocation-free form of Map.
	MapRange(dst []layout.Unit, logical, n int) ([]layout.Unit, error)

	// Logical inverts Map; ok is false for parity units or positions
	// outside the array.
	Logical(u layout.Unit) (int, bool)

	// DegradedMap resolves a logical address while disk failed is down.
	// When the home unit survives, it is returned directly; when it lived
	// on the failed disk, the surviving units of its stripe are returned
	// so the caller can reconstruct the payload by XOR.
	DegradedMap(logical, failed int) (DegradedRead, error)

	// AppendSurvivors is the allocation-free DegradedMap: when logical's
	// home unit lies on disk failed, the stripe's surviving units
	// (including parity, in stripe order) are appended to dst. It returns
	// the extended slice, the home unit, and whether the home disk is the
	// failed one (dst is returned unchanged when it is not).
	AppendSurvivors(dst []layout.Unit, logical, failed int) (survivors []layout.Unit, home layout.Unit, degraded bool, err error)

	// StripeOf returns the index (in [0, Stripes())) of the parity stripe
	// containing a logical address, along with the address's home unit.
	StripeOf(logical int) (stripe int, home layout.Unit, err error)

	// ParityOf returns the first parity unit of a stripe, copy-adjusted.
	ParityOf(stripe int) (layout.Unit, error)

	// AppendStripeUnits appends every unit of a stripe (copy-adjusted, in
	// stripe order, parity included) to dst and returns the extended
	// slice.
	AppendStripeUnits(dst []layout.Unit, stripe int) ([]layout.Unit, error)

	// ParityShards returns the layout's parity units per stripe (m): the
	// number of simultaneous disk failures the array's erasure code must
	// tolerate.
	ParityShards() int

	// AppendParityUnits appends the stripe's m parity units
	// (copy-adjusted, in parity-shard order k..k+m-1) to dst and returns
	// the extended slice; the generalization of ParityOf.
	AppendParityUnits(dst []layout.Unit, stripe int) ([]layout.Unit, error)

	// ShardAt returns the erasure-code shard index of a physical unit
	// within its stripe — data units are 0..k-1 in stripe-position order,
	// parity unit j is k+j — or -1 when the unit lies outside the array.
	ShardAt(u layout.Unit) int
}

// DegradedRead is the result of Mapper.DegradedMap.
type DegradedRead struct {
	// Unit is the home position of the logical address (on the failed
	// disk when Degraded).
	Unit layout.Unit

	// Degraded reports whether the home disk is the failed one.
	Degraded bool

	// Survivors holds, when Degraded, the stripe's surviving units
	// (including parity) whose XOR reconstructs the payload.
	Survivors []layout.Unit
}

// tableMapper implements Mapper over layout.Mapping's precomputed dense
// tables, baking in the disk geometry (validated once at construction, so
// the per-lookup path is table access plus constant arithmetic) and adding
// the degraded-mode stripe resolution.
type tableMapper struct {
	l           *layout.Layout
	m           *layout.Mapping
	diskUnits   int
	copies      int
	dataPerCopy int
	capacity    int
	perCopy     int // stripes per layout copy
}

// NewMapper builds the lookup tables for a layout with fully assigned
// parity, for disks of diskUnits units (a positive multiple of the layout
// size; the layout tiles vertically).
func NewMapper(l *layout.Layout, diskUnits int) (Mapper, error) {
	if l.Size <= 0 {
		return nil, fmt.Errorf("pdl: NewMapper: layout size %d must be positive", l.Size)
	}
	m, err := layout.NewMapping(l)
	if err != nil {
		return nil, fmt.Errorf("pdl: NewMapper: %w", err)
	}
	return NewMapperFromMapping(m, diskUnits)
}

// NewMapperFromMapping wraps already-built mapping tables (from
// layout.NewMapping) as a Mapper for disks of diskUnits units, sharing
// the tables instead of rebuilding them — for callers that also use the
// Mapping directly (e.g. the simulator or the layout Data engine).
func NewMapperFromMapping(m *layout.Mapping, diskUnits int) (Mapper, error) {
	l := m.Layout()
	if diskUnits <= 0 || diskUnits%l.Size != 0 {
		return nil, fmt.Errorf("pdl: NewMapper: disk size %d not a positive multiple of layout size %d", diskUnits, l.Size)
	}
	copies := diskUnits / l.Size
	return &tableMapper{
		l:           l,
		m:           m,
		diskUnits:   diskUnits,
		copies:      copies,
		dataPerCopy: m.DataUnits(),
		capacity:    m.DataUnits() * copies,
		perCopy:     m.NumStripes(),
	}, nil
}

func (t *tableMapper) DataUnits() int { return t.capacity }

func (t *tableMapper) DiskUnits() int { return t.diskUnits }

func (t *tableMapper) Disks() int { return t.l.V }

func (t *tableMapper) Stripes() int { return t.perCopy * t.copies }

func (t *tableMapper) Map(logical int) (layout.Unit, error) {
	if logical < 0 || logical >= t.capacity {
		return layout.Unit{}, fmt.Errorf("pdl: Map: logical %d outside [0,%d)", logical, t.capacity)
	}
	copyIdx := logical / t.dataPerCopy
	u := t.m.ForwardUnit(logical - copyIdx*t.dataPerCopy)
	u.Offset += copyIdx * t.l.Size
	return u, nil
}

func (t *tableMapper) MapRange(dst []layout.Unit, logical, n int) ([]layout.Unit, error) {
	if n < 0 {
		return dst, fmt.Errorf("pdl: MapRange: negative count %d", n)
	}
	if logical < 0 || logical > t.capacity-n {
		return dst, fmt.Errorf("pdl: MapRange: [%d,%d) outside [0,%d)", logical, logical+n, t.capacity)
	}
	for i := logical; i < logical+n; i++ {
		copyIdx := i / t.dataPerCopy
		u := t.m.ForwardUnit(i - copyIdx*t.dataPerCopy)
		u.Offset += copyIdx * t.l.Size
		dst = append(dst, u)
	}
	return dst, nil
}

func (t *tableMapper) Logical(u layout.Unit) (int, bool) {
	if u.Disk < 0 || u.Disk >= t.l.V || u.Offset < 0 || u.Offset >= t.diskUnits {
		return 0, false
	}
	copyIdx := u.Offset / t.l.Size
	base := t.m.LogicalIndex(u.Disk, u.Offset-copyIdx*t.l.Size)
	if base < 0 {
		return 0, false
	}
	return base + copyIdx*t.dataPerCopy, true
}

func (t *tableMapper) DegradedMap(logical, failed int) (DegradedRead, error) {
	if failed < 0 || failed >= t.l.V {
		return DegradedRead{}, fmt.Errorf("pdl: DegradedMap: failed disk %d outside [0,%d)", failed, t.l.V)
	}
	u, err := t.Map(logical)
	if err != nil {
		return DegradedRead{}, err
	}
	if u.Disk != failed {
		return DegradedRead{Unit: u}, nil
	}
	stripe := t.m.StripeUnits(t.m.StripeAt(u))
	survivors := t.appendStripeSurvivors(make([]layout.Unit, 0, len(stripe)-1), u, failed)
	return DegradedRead{Unit: u, Degraded: true, Survivors: survivors}, nil
}

func (t *tableMapper) AppendSurvivors(dst []layout.Unit, logical, failed int) ([]layout.Unit, layout.Unit, bool, error) {
	if failed < 0 || failed >= t.l.V {
		return dst, layout.Unit{}, false, fmt.Errorf("pdl: AppendSurvivors: failed disk %d outside [0,%d)", failed, t.l.V)
	}
	u, err := t.Map(logical)
	if err != nil {
		return dst, layout.Unit{}, false, err
	}
	if u.Disk != failed {
		return dst, u, false, nil
	}
	return t.appendStripeSurvivors(dst, u, failed), u, true, nil
}

// appendStripeSurvivors appends the surviving units of the stripe
// containing physical unit u (which lies on disk failed), copy-adjusted.
func (t *tableMapper) appendStripeSurvivors(dst []layout.Unit, u layout.Unit, failed int) []layout.Unit {
	copyBase := (u.Offset / t.l.Size) * t.l.Size
	for _, su := range t.m.StripeUnits(t.m.StripeAt(u)) {
		if su.Disk == failed {
			continue
		}
		dst = append(dst, layout.Unit{Disk: su.Disk, Offset: su.Offset + copyBase})
	}
	return dst
}

func (t *tableMapper) StripeOf(logical int) (int, layout.Unit, error) {
	u, err := t.Map(logical)
	if err != nil {
		return 0, layout.Unit{}, err
	}
	copyIdx := u.Offset / t.l.Size
	return copyIdx*t.perCopy + t.m.StripeAt(u), u, nil
}

func (t *tableMapper) ParityOf(stripe int) (layout.Unit, error) {
	si, copyBase, err := t.splitStripe("ParityOf", stripe)
	if err != nil {
		return layout.Unit{}, err
	}
	pu := t.m.StripeUnits(si)[t.m.ParityIndex(si)]
	return layout.Unit{Disk: pu.Disk, Offset: pu.Offset + copyBase}, nil
}

func (t *tableMapper) AppendStripeUnits(dst []layout.Unit, stripe int) ([]layout.Unit, error) {
	si, copyBase, err := t.splitStripe("AppendStripeUnits", stripe)
	if err != nil {
		return dst, err
	}
	for _, su := range t.m.StripeUnits(si) {
		dst = append(dst, layout.Unit{Disk: su.Disk, Offset: su.Offset + copyBase})
	}
	return dst, nil
}

func (t *tableMapper) ParityShards() int { return t.m.ParityShards() }

func (t *tableMapper) AppendParityUnits(dst []layout.Unit, stripe int) ([]layout.Unit, error) {
	si, copyBase, err := t.splitStripe("AppendParityUnits", stripe)
	if err != nil {
		return dst, err
	}
	for j := 0; j < t.m.ParityShards(); j++ {
		pu := t.m.ParityUnitAt(si, j)
		dst = append(dst, layout.Unit{Disk: pu.Disk, Offset: pu.Offset + copyBase})
	}
	return dst, nil
}

func (t *tableMapper) ShardAt(u layout.Unit) int {
	if u.Disk < 0 || u.Disk >= t.l.V || u.Offset < 0 || u.Offset >= t.diskUnits {
		return -1
	}
	return t.m.ShardIndex(u.Disk, u.Offset%t.l.Size)
}

// splitStripe resolves a global stripe index into its per-copy index and
// the copy's offset base.
func (t *tableMapper) splitStripe(op string, stripe int) (si, copyBase int, err error) {
	if stripe < 0 || stripe >= t.perCopy*t.copies {
		return 0, 0, fmt.Errorf("pdl: %s: stripe %d outside [0,%d)", op, stripe, t.perCopy*t.copies)
	}
	return stripe % t.perCopy, (stripe / t.perCopy) * t.l.Size, nil
}
