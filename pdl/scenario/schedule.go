package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// The schedule file is the scenario's portable form: a versioned JSON
// document checked into testdata and handed to `pdlserve scenario -f`
// or `pdlcluster scenario -f`. Durations are human strings ("250ms",
// "3s") — schedules are written by hand. The decoder applies the same
// Validate as Run, so a file that decodes runs on any target, and it
// rejects files from a newer format with ErrScheduleVersion rather
// than misreading them (bump ScheduleVersion on any breaking change;
// see CONTRIBUTING.md).

// ScheduleVersion is the newest schedule format this package reads and
// writes.
const ScheduleVersion = 1

// ErrScheduleVersion reports a schedule written by a newer format; it
// supports errors.Is.
var ErrScheduleVersion = errors.New("scenario: unsupported schedule format version")

// maxScheduleBytes bounds a schedule file against hostile input.
const maxScheduleBytes = 1 << 22

// scheduleFile is the on-disk envelope.
type scheduleFile struct {
	Version int `json:"version"`
	Scenario
}

// EncodeSchedule renders the scenario as a version-stamped JSON
// schedule. It validates first: this package never writes a file it
// would refuse to read.
func EncodeSchedule(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(scheduleFile{Version: ScheduleVersion, Scenario: *s}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode schedule: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeSchedule parses and validates a JSON schedule. Unknown
// top-level fields are rejected — a typoed key must not silently
// disable a fault. It never panics on hostile bytes (FuzzDecodeSchedule
// pins this).
func DecodeSchedule(b []byte) (*Scenario, error) {
	if len(b) > maxScheduleBytes {
		return nil, fmt.Errorf("scenario: schedule is %d bytes, over the %d cap", len(b), maxScheduleBytes)
	}
	var f scheduleFile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: decode schedule: %w", err)
	}
	if f.Version < 1 {
		return nil, fmt.Errorf("scenario: schedule missing format version")
	}
	if f.Version > ScheduleVersion {
		return nil, fmt.Errorf("scenario: %w: format %d, this build reads <= %d", ErrScheduleVersion, f.Version, ScheduleVersion)
	}
	if err := f.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &f.Scenario, nil
}

// ReadScheduleFile is DecodeSchedule over a file.
func ReadScheduleFile(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return DecodeSchedule(b)
}

// Duration fields ride JSON as human strings through shadow structs:
// each type with a time.Duration field tags it `json:"-"` and supplies
// the string form here. Decoding also accepts a bare number of
// nanoseconds, so programmatic writers needn't format.

func fmtDur(d time.Duration) string {
	if d == 0 {
		return ""
	}
	return d.String()
}

func parseDur(dst *time.Duration, raw json.RawMessage, field string) error {
	if len(raw) == 0 {
		*dst = 0
		return nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		if s == "" {
			*dst = 0
			return nil
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", field, err)
		}
		*dst = d
		return nil
	}
	var ns int64
	if err := json.Unmarshal(raw, &ns); err != nil {
		return fmt.Errorf("scenario: %s: want a duration string or nanoseconds", field)
	}
	*dst = time.Duration(ns)
	return nil
}

// MarshalJSON implements json.Marshaler with At as a duration string.
func (e Event) MarshalJSON() ([]byte, error) {
	type raw Event
	return json.Marshal(struct {
		raw
		At string `json:"at,omitempty"`
	}{raw(e), fmtDur(e.At)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	type raw Event
	aux := struct {
		*raw
		At json.RawMessage `json:"at"`
	}{raw: (*raw)(e)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	return parseDur(&e.At, aux.At, "event at")
}

// MarshalJSON implements json.Marshaler with Duration as a string.
func (l Load) MarshalJSON() ([]byte, error) {
	type raw Load
	return json.Marshal(struct {
		raw
		Duration string `json:"duration,omitempty"`
	}{raw(l), fmtDur(l.Duration)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Load) UnmarshalJSON(b []byte) error {
	type raw Load
	aux := struct {
		*raw
		Duration json.RawMessage `json:"duration"`
	}{raw: (*raw)(l)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	return parseDur(&l.Duration, aux.Duration, "load duration")
}

// MarshalJSON implements json.Marshaler with the duration bounds as
// strings.
func (s SLO) MarshalJSON() ([]byte, error) {
	type raw SLO
	return json.Marshal(struct {
		raw
		MaxP99     string `json:"max_p99,omitempty"`
		P99Floor   string `json:"p99_floor,omitempty"`
		MaxRebuild string `json:"max_rebuild,omitempty"`
	}{raw(s), fmtDur(s.MaxP99), fmtDur(s.P99Floor), fmtDur(s.MaxRebuild)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *SLO) UnmarshalJSON(b []byte) error {
	type raw SLO
	aux := struct {
		*raw
		MaxP99     json.RawMessage `json:"max_p99"`
		P99Floor   json.RawMessage `json:"p99_floor"`
		MaxRebuild json.RawMessage `json:"max_rebuild"`
	}{raw: (*raw)(s)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	if err := parseDur(&s.MaxP99, aux.MaxP99, "slo max_p99"); err != nil {
		return err
	}
	if err := parseDur(&s.P99Floor, aux.P99Floor, "slo p99_floor"); err != nil {
		return err
	}
	return parseDur(&s.MaxRebuild, aux.MaxRebuild, "slo max_rebuild")
}
