// Package scenario is the repo's fault-injection test harness: a
// deterministic engine that drives a scripted schedule of faults
// ("fail disk 3", "rebuild", "kill shard 2 and restart it") against a
// live serving target while measuring per-phase latency, and judges the
// result against declared SLOs ("degraded p99 stays within 3x of
// healthy p99", "rebuild under load finishes inside its budget").
//
// A Scenario is a declarative value: phases run in order, each phase
// runs a seeded workload while its events fire in schedule order, and
// the report carries one latency window per phase carved from
// cumulative obs.Hist snapshots. The same scenario value — or the same
// versioned JSON schedule file — runs unchanged against an in-process
// store.Store, a serve frontend, a pdlserve TCP endpoint, or a whole
// cluster of shards, so a regression asserted at one layer is asserted
// at every layer above it.
package scenario

import (
	"errors"
	"fmt"
	"time"
)

// Action names one scripted fault-injection step.
type Action string

const (
	// ActFail fails Disk on Shard's array (degraded mode begins).
	ActFail Action = "fail"
	// ActRebuild rebuilds Shard's lowest failed disk onto a fresh
	// replacement, blocking the schedule until it completes; the
	// rebuild's duration is recorded for SLO judgment.
	ActRebuild Action = "rebuild"
	// ActKill kills Shard's serving process (cluster targets); its
	// store keeps its bytes, like a crashed pdlserve.
	ActKill Action = "kill"
	// ActRestart revives a killed shard on its old address.
	ActRestart Action = "restart"
	// ActPauseBackground gates the scenario's background workload off.
	ActPauseBackground Action = "pause-bg"
	// ActResumeBackground reopens the background gate.
	ActResumeBackground Action = "resume-bg"
)

// valid reports whether a is a known action.
func (a Action) valid() bool {
	switch a {
	case ActFail, ActRebuild, ActKill, ActRestart, ActPauseBackground, ActResumeBackground:
		return true
	}
	return false
}

// Event is one scheduled step inside a phase. Events fire strictly in
// slice order — that ordering is the determinism contract, identical on
// every run of the same scenario. AtOps and At only say when the
// coordinator starts waiting to fire the next event: after the phase's
// completed-op counter passes AtOps (deterministic against op progress,
// the right trigger for tests) and after At of wall-clock has elapsed
// since the phase began (the right trigger for live experiments). Both
// zero fires the event immediately.
type Event struct {
	Action Action        `json:"action"`
	Shard  int           `json:"shard,omitempty"`
	Disk   int           `json:"disk,omitempty"`
	AtOps  int64         `json:"at_ops,omitempty"`
	At     time.Duration `json:"-"`
}

// Load shapes one workload: Workers concurrent submitters each drawing
// from a seeded sim generator (Zipf-skewed when ZipfTheta > 0, uniform
// otherwise) with the given write fraction. The load runs until Ops
// total operations complete (deterministic) or Duration elapses,
// whichever is set; a phase load must set at least one.
type Load struct {
	Workers   int           `json:"workers"`
	Ops       int64         `json:"ops,omitempty"`
	Duration  time.Duration `json:"-"`
	WriteFrac float64       `json:"write_frac"`
	ZipfTheta float64       `json:"zipf_theta,omitempty"`
}

// SLO declares the latency and recovery targets a phase must meet; any
// violated clause fails the scenario with ErrSLO. The zero value of
// each clause disables it — except errors: a phase that declares any
// SLO tolerates at most MaxErrors op errors (so the default is zero
// tolerance; set -1 to allow any, e.g. across a kill window).
type SLO struct {
	// MaxP99 bounds the phase's foreground p99 absolutely.
	MaxP99 time.Duration `json:"-"`

	// MaxP99Ratio bounds the phase's foreground p99 relative to the
	// earlier phase named P99RatioTo — the degraded-vs-healthy
	// regression clause ("degraded p99 <= 3x healthy p99").
	MaxP99Ratio float64 `json:"max_p99_ratio,omitempty"`
	P99RatioTo  string  `json:"p99_ratio_to,omitempty"`

	// P99Floor mutes the ratio clause while the phase's p99 sits below
	// this absolute bound. Microsecond-scale baselines make a raw ratio
	// one scheduler stall away from a false alarm; a floor keeps the
	// clause about real degraded-path regressions.
	P99Floor time.Duration `json:"-"`

	// MaxRebuild bounds the duration of every rebuild event that fires
	// during the phase.
	MaxRebuild time.Duration `json:"-"`

	// MaxErrors caps op errors in the phase: 0 forbids them, -1 allows
	// any, n > 0 allows up to n.
	MaxErrors int64 `json:"max_errors,omitempty"`

	// RequireHealthy asserts the target reports no failed disks when
	// the phase ends — the "recovered" clause after a rebuild.
	RequireHealthy bool `json:"require_healthy,omitempty"`
}

// Phase is one chapter of a scenario: a workload, the events that fire
// under it, and the SLO its latency window must meet.
type Phase struct {
	Name   string  `json:"name"`
	Load   Load    `json:"load"`
	Events []Event `json:"events,omitempty"`
	SLO    *SLO    `json:"slo,omitempty"`
}

// Scenario is a complete scripted experiment.
type Scenario struct {
	Name string `json:"name"`

	// Seed derives every worker's generator; one seed reproduces the
	// whole run.
	Seed uint64 `json:"seed"`

	// Verify turns on data checking: workers own disjoint logical
	// lanes, model every write, check every read, and the engine
	// sweeps all written units at the end. Costs throughput; tests
	// want it on, latency experiments off.
	Verify bool `json:"verify,omitempty"`

	// Background, when non-nil, runs a background-class workload for
	// the scenario's whole life (between pause-bg/resume-bg events).
	// Its Ops/Duration are ignored; it stops when the phases end.
	Background *Load `json:"background,omitempty"`

	Phases []Phase `json:"phases"`
}

// Engine bounds, far above any sane scenario; they keep hostile
// schedule files from provisioning absurd runs.
const (
	maxPhases     = 256
	maxEvents     = 1024
	maxWorkers    = 4096
	maxLoadOps    = int64(1) << 40
	maxEventDelay = 24 * time.Hour
	maxDisk       = 1 << 20
	maxShard      = 1 << 20
)

// Validate checks the scenario against the engine's bounds: it is what
// DecodeSchedule enforces on files and Run enforces on Go values, so a
// scenario that validates runs on any target.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: name required")
	}
	if len(s.Phases) == 0 {
		return errors.New("scenario: at least one phase required")
	}
	if len(s.Phases) > maxPhases {
		return fmt.Errorf("scenario: %d phases exceeds %d", len(s.Phases), maxPhases)
	}
	if s.Background != nil {
		if err := validateLoad(s.Background, "background", false); err != nil {
			return err
		}
	}
	seen := make(map[string]bool, len(s.Phases))
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("scenario: phase %d: name required", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("scenario: phase %q appears twice", p.Name)
		}
		if err := validateLoad(&p.Load, p.Name, true); err != nil {
			return err
		}
		if len(p.Events) > maxEvents {
			return fmt.Errorf("scenario: phase %q: %d events exceeds %d", p.Name, len(p.Events), maxEvents)
		}
		for j := range p.Events {
			if err := validateEvent(&p.Events[j], p.Name, j); err != nil {
				return err
			}
			if p.Load.Ops > 0 && p.Events[j].AtOps > p.Load.Ops {
				return fmt.Errorf("scenario: phase %q event %d: at_ops %d beyond the phase's %d-op budget",
					p.Name, j, p.Events[j].AtOps, p.Load.Ops)
			}
		}
		if p.SLO != nil {
			if err := validateSLO(p.SLO, p.Name, seen); err != nil {
				return err
			}
		}
		seen[p.Name] = true
	}
	return nil
}

func validateLoad(l *Load, name string, needBudget bool) error {
	if l.Workers < 1 || l.Workers > maxWorkers {
		return fmt.Errorf("scenario: %s load: workers %d outside [1,%d]", name, l.Workers, maxWorkers)
	}
	if l.Ops < 0 || l.Ops > maxLoadOps {
		return fmt.Errorf("scenario: %s load: ops %d outside [0,%d]", name, l.Ops, maxLoadOps)
	}
	if l.Duration < 0 || l.Duration > maxEventDelay {
		return fmt.Errorf("scenario: %s load: bad duration %v", name, l.Duration)
	}
	if needBudget && l.Ops == 0 && l.Duration == 0 {
		return fmt.Errorf("scenario: %s load: needs an ops or duration budget", name)
	}
	if l.WriteFrac < 0 || l.WriteFrac > 1 {
		return fmt.Errorf("scenario: %s load: write fraction %v outside [0,1]", name, l.WriteFrac)
	}
	if l.ZipfTheta < 0 || l.ZipfTheta > 4 {
		return fmt.Errorf("scenario: %s load: zipf theta %v outside [0,4]", name, l.ZipfTheta)
	}
	return nil
}

func validateEvent(e *Event, phase string, j int) error {
	if !e.Action.valid() {
		return fmt.Errorf("scenario: phase %q event %d: unknown action %q", phase, j, e.Action)
	}
	if e.Shard < 0 || e.Shard > maxShard {
		return fmt.Errorf("scenario: phase %q event %d: bad shard %d", phase, j, e.Shard)
	}
	if e.Disk < 0 || e.Disk > maxDisk {
		return fmt.Errorf("scenario: phase %q event %d: bad disk %d", phase, j, e.Disk)
	}
	if e.AtOps < 0 || e.AtOps > maxLoadOps {
		return fmt.Errorf("scenario: phase %q event %d: bad at_ops %d", phase, j, e.AtOps)
	}
	if e.At < 0 || e.At > maxEventDelay {
		return fmt.Errorf("scenario: phase %q event %d: bad at %v", phase, j, e.At)
	}
	return nil
}

func validateSLO(s *SLO, phase string, earlier map[string]bool) error {
	if s.MaxP99 < 0 || s.MaxRebuild < 0 || s.P99Floor < 0 {
		return fmt.Errorf("scenario: phase %q: negative SLO bound", phase)
	}
	if s.MaxP99Ratio < 0 {
		return fmt.Errorf("scenario: phase %q: negative p99 ratio", phase)
	}
	if (s.MaxP99Ratio > 0) != (s.P99RatioTo != "") {
		return fmt.Errorf("scenario: phase %q: max_p99_ratio and p99_ratio_to go together", phase)
	}
	if s.P99RatioTo != "" && !earlier[s.P99RatioTo] {
		return fmt.Errorf("scenario: phase %q: p99_ratio_to %q is not an earlier phase", phase, s.P99RatioTo)
	}
	if s.MaxErrors < -1 {
		return fmt.Errorf("scenario: phase %q: bad max_errors %d", phase, s.MaxErrors)
	}
	return nil
}
