package scenario

import (
	"fmt"
	"time"

	"repro/pdl/obs"
	"repro/pdl/sim"
)

// ReplayReport is what a trace replay measured.
type ReplayReport struct {
	Ops    int64         `json:"ops"`
	Errors int64         `json:"errors"`
	Took   time.Duration `json:"took_ns"`

	// Foreground and Background summarize replayed latency by the
	// class each op was recorded on.
	Foreground obs.Summary `json:"foreground"`
	Background obs.Summary `json:"background"`
}

// ReplayTrace replays a recorded request stream (see sim.DecodeTrace
// and serve's Frontend.RecordTrace) against the target. speed scales
// the recorded inter-arrival gaps: 1 replays with original timing, 2
// twice as fast, and <= 0 replays flat out with no pacing. Addresses
// recorded beyond the target's capacity wrap modulo capacity, so a
// trace from a big deployment still drives a small test array — the
// report is only a faithful reproduction when the geometries match
// (compare tr.UnitSize with the target's).
func ReplayTrace(tgt Target, tr *sim.Trace, speed float64) (*ReplayReport, error) {
	if len(tr.Ops) == 0 {
		return nil, fmt.Errorf("scenario: replay: empty trace")
	}
	cap := tgt.Capacity()
	if cap < 1 {
		return nil, fmt.Errorf("scenario: replay: target has no capacity")
	}
	var fg, bg obs.Hist
	rep := &ReplayReport{}
	buf := make([]byte, tgt.UnitSize())
	start := time.Now()
	var elapsed time.Duration
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if speed > 0 && op.Delta > 0 {
			elapsed += time.Duration(float64(op.Delta) / speed)
			if d := time.Until(start.Add(elapsed)); d > 0 {
				time.Sleep(d)
			}
		}
		logical := op.Logical % cap
		if op.Kind == sim.Write {
			fill(buf, payloadKey(uint64(tr.UnitSize), logical, uint64(i)))
		}
		t0 := time.Now()
		var err error
		if op.Kind == sim.Write {
			err = tgt.Write(logical, buf, op.Background)
		} else {
			err = tgt.Read(logical, buf, op.Background)
		}
		d := time.Since(t0)
		rep.Ops++
		if err != nil {
			rep.Errors++
			continue
		}
		if op.Background {
			bg.Record(d)
		} else {
			fg.Record(d)
		}
	}
	rep.Took = time.Since(start)
	rep.Foreground = fg.Summary()
	rep.Background = bg.Summary()
	return rep, nil
}
