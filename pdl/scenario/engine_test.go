package scenario_test

import (
	"errors"
	"testing"
	"time"

	"repro/pdl"
	"repro/pdl/scenario"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// newStoreTarget builds a MemDisk-backed 13-disk array target.
func newStoreTarget(t testing.TB, unitSize int) *scenario.StoreTarget {
	t.Helper()
	res, err := pdl.Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &scenario.StoreTarget{S: s}
}

// failRebuildScenario is the canonical script: healthy baseline, fail a
// disk under load, rebuild under load, then assert recovery.
func failRebuildScenario(seed uint64) *scenario.Scenario {
	load := scenario.Load{Workers: 4, Ops: 400, WriteFrac: 0.4}
	return &scenario.Scenario{
		Name:   "fail-rebuild",
		Seed:   seed,
		Verify: true,
		Phases: []scenario.Phase{
			{Name: "healthy", Load: load},
			{
				Name: "degraded",
				Load: load,
				Events: []scenario.Event{
					{Action: scenario.ActFail, Disk: 3, AtOps: 50},
				},
			},
			{
				Name: "rebuild",
				Load: load,
				Events: []scenario.Event{
					{Action: scenario.ActRebuild, AtOps: 50},
				},
				SLO: &scenario.SLO{MaxRebuild: time.Minute, RequireHealthy: true},
			},
			{Name: "recovered", Load: load, SLO: &scenario.SLO{RequireHealthy: true}},
		},
	}
}

// TestRunStoreFailRebuild runs the canonical script against a bare
// store with verify mode on: every read checked against the model,
// final sweep, parity verified afterward.
func TestRunStoreFailRebuild(t *testing.T) {
	tgt := newStoreTarget(t, 32)
	rep, err := scenario.Run(failRebuildScenario(42), tgt)
	if err != nil {
		t.Fatalf("Run: %v (violations: %v)", err, rep.Violations)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("got %d phase reports, want 4", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Ops != 400 {
			t.Errorf("phase %s ran %d ops, want 400", p.Name, p.Ops)
		}
		if p.Errors != 0 {
			t.Errorf("phase %s saw %d errors", p.Name, p.Errors)
		}
		if p.Foreground.Count == 0 || p.Foreground.P99 == 0 {
			t.Errorf("phase %s has an empty latency window: %+v", p.Name, p.Foreground)
		}
	}
	if got := rep.Phases[2].Events[0]; got.Action != scenario.ActRebuild || got.Took <= 0 || got.Err != "" {
		t.Errorf("rebuild event record = %+v", got)
	}
	if err := tgt.S.VerifyParity(); err != nil {
		t.Errorf("parity after scenario: %v", err)
	}
	if len(tgt.S.FailedDisks()) != 0 {
		t.Errorf("disks still failed after rebuild: %v", tgt.S.FailedDisks())
	}
}

// TestRunDeterminism pins the acceptance criterion: one seed, two runs,
// identical event orderings and op counts.
func TestRunDeterminism(t *testing.T) {
	var reps [2]*scenario.Report
	for i := range reps {
		tgt := newStoreTarget(t, 32)
		rep, err := scenario.Run(failRebuildScenario(7), tgt)
		if err != nil {
			t.Fatalf("run %d: %v (violations: %v)", i, err, rep.Violations)
		}
		reps[i] = rep
	}
	a, b := reps[0], reps[1]
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts diverge: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := &a.Phases[i], &b.Phases[i]
		if pa.Ops != pb.Ops || pa.Errors != pb.Errors {
			t.Errorf("phase %s: ops %d/%d errs %d/%d diverge", pa.Name, pa.Ops, pb.Ops, pa.Errors, pb.Errors)
		}
		if len(pa.Events) != len(pb.Events) {
			t.Fatalf("phase %s: event counts diverge", pa.Name)
		}
		for j := range pa.Events {
			ea, eb := pa.Events[j], pb.Events[j]
			if ea.Action != eb.Action || ea.Shard != eb.Shard || ea.Disk != eb.Disk || (ea.Err == "") != (eb.Err == "") {
				t.Errorf("phase %s event %d diverges: %+v vs %+v", pa.Name, j, ea, eb)
			}
		}
	}
}

// TestRunSLOViolation proves an impossible latency bound fails the run
// with ErrSLO and a report naming the clause.
func TestRunSLOViolation(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "impossible",
		Seed: 1,
		Phases: []scenario.Phase{
			{
				Name: "strict",
				Load: scenario.Load{Workers: 2, Ops: 100},
				SLO:  &scenario.SLO{MaxP99: time.Nanosecond},
			},
		},
	}
	rep, err := scenario.Run(sc, newStoreTarget(t, 32))
	if !errors.Is(err, scenario.ErrSLO) {
		t.Fatalf("err = %v, want ErrSLO", err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violations reported")
	}
}

// TestRunRatioClause pins the degraded-vs-healthy ratio judgment: an
// absurdly generous ratio passes, an impossibly tight one fails.
func TestRunRatioClause(t *testing.T) {
	load := scenario.Load{Workers: 2, Ops: 200, WriteFrac: 0.3}
	build := func(ratio float64) *scenario.Scenario {
		return &scenario.Scenario{
			Name: "ratio",
			Seed: 5,
			Phases: []scenario.Phase{
				{Name: "healthy", Load: load},
				{
					Name:   "degraded",
					Load:   load,
					Events: []scenario.Event{{Action: scenario.ActFail, Disk: 1, AtOps: 10}},
					SLO:    &scenario.SLO{MaxP99Ratio: ratio, P99RatioTo: "healthy"},
				},
			},
		}
	}
	if rep, err := scenario.Run(build(1e9), newStoreTarget(t, 32)); err != nil {
		t.Fatalf("generous ratio: %v (violations: %v)", err, rep.Violations)
	}
	// Histogram buckets are powers of two, so a ratio below 2^-63 is
	// unsatisfiable by construction.
	if _, err := scenario.Run(build(1e-20), newStoreTarget(t, 32)); !errors.Is(err, scenario.ErrSLO) {
		t.Fatalf("impossible ratio: err = %v, want ErrSLO", err)
	}
}

// TestRunFrontendBackground drives a Frontend target with a background
// workload paused and resumed by schedule, touching the real priority
// classes.
func TestRunFrontendBackground(t *testing.T) {
	res, err := pdl.Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, res.Layout.Size, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := serve.New(s, serve.Config{QueueDepth: 16})
	t.Cleanup(func() {
		f.Close()
		s.Close()
	})
	sc := &scenario.Scenario{
		Name:       "bg-pause",
		Seed:       11,
		Verify:     true,
		Background: &scenario.Load{Workers: 2, WriteFrac: 0.5},
		Phases: []scenario.Phase{
			{
				Name: "quiet",
				Load: scenario.Load{Workers: 2, Ops: 300, WriteFrac: 0.5},
				Events: []scenario.Event{
					{Action: scenario.ActPauseBackground, AtOps: 20},
					{Action: scenario.ActResumeBackground, AtOps: 200},
				},
			},
		},
	}
	rep, err := scenario.Run(sc, &scenario.FrontendTarget{F: f})
	if err != nil {
		t.Fatalf("Run: %v (violations: %v)", err, rep.Violations)
	}
	if rep.BackgroundOps == 0 {
		t.Error("background workload never ran")
	}
	if rep.BackgroundErrors != 0 {
		t.Errorf("background saw %d errors", rep.BackgroundErrors)
	}
	st := f.Stats()
	if st.Background == 0 {
		t.Error("no ops rode the background class")
	}
}

// TestRunEventFailureIsViolation proves a failed scheduled event (fail
// on a target that cannot inject) surfaces as an SLO failure, not a
// silent no-op.
func TestRunEventFailureIsViolation(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "bad-event",
		Seed: 1,
		Phases: []scenario.Phase{
			{
				Name:   "only",
				Load:   scenario.Load{Workers: 1, Ops: 50},
				Events: []scenario.Event{{Action: scenario.ActFail, Shard: 7, Disk: 0, AtOps: 5}},
			},
		},
	}
	rep, err := scenario.Run(sc, newStoreTarget(t, 32))
	if !errors.Is(err, scenario.ErrSLO) {
		t.Fatalf("err = %v, want ErrSLO", err)
	}
	if len(rep.Phases[0].Events) != 1 || rep.Phases[0].Events[0].Err == "" {
		t.Fatalf("event record = %+v, want recorded failure", rep.Phases[0].Events)
	}
}
