package scenario

import (
	"fmt"
	"io"
	"time"

	"repro/pdl/obs"
)

// EventRecord is what one scheduled event did: how long it took (the
// rebuild-budget SLO judges this) and whether it failed.
type EventRecord struct {
	Action Action        `json:"action"`
	Shard  int           `json:"shard"`
	Disk   int           `json:"disk"`
	Took   time.Duration `json:"took_ns"`
	Err    string        `json:"err,omitempty"`
}

// PhaseReport is one phase's measured outcome: the op counts and the
// latency window carved from the engine's cumulative histograms at the
// phase boundaries.
type PhaseReport struct {
	Name   string        `json:"name"`
	Ops    int64         `json:"ops"`
	Errors int64         `json:"errors"`
	Took   time.Duration `json:"took_ns"`

	// Foreground and Background summarize the phase's latency windows
	// by class.
	Foreground obs.Summary `json:"foreground"`
	Background obs.Summary `json:"background"`

	Events     []EventRecord `json:"events,omitempty"`
	Violations []string      `json:"violations,omitempty"`
}

// Report is a completed scenario run.
type Report struct {
	Scenario string        `json:"scenario"`
	Target   string        `json:"target"`
	Seed     uint64        `json:"seed"`
	Phases   []PhaseReport `json:"phases"`

	// BackgroundOps and BackgroundErrors total the scenario-wide
	// background workload (background errors are expected across kill
	// windows and never violate an SLO).
	BackgroundOps    int64 `json:"background_ops"`
	BackgroundErrors int64 `json:"background_errors"`

	// Violations flattens every phase's violated SLO clauses; empty
	// means the scenario passed.
	Violations []string `json:"violations,omitempty"`
}

// WriteText renders the report as the human table the scenario
// subcommands print: one line per phase with the percentile triple,
// events indented beneath, violations last.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario %s  target=%s  seed=%d\n", r.Scenario, r.Target, r.Seed)
	for i := range r.Phases {
		p := &r.Phases[i]
		fmt.Fprintf(w, "  phase %-12s ops=%-8d errs=%-4d p50=%-10v p95=%-10v p99=%-10v mean=%v\n",
			p.Name, p.Ops, p.Errors, p.Foreground.P50, p.Foreground.P95, p.Foreground.P99, p.Foreground.Mean)
		if p.Background.Count > 0 {
			fmt.Fprintf(w, "    background   ops=%-8d p99=%v\n", p.Background.Count, p.Background.P99)
		}
		for j := range p.Events {
			ev := &p.Events[j]
			status := "ok"
			if ev.Err != "" {
				status = "FAILED: " + ev.Err
			}
			fmt.Fprintf(w, "    event %-10s shard=%d disk=%d took=%-10v %s\n", ev.Action, ev.Shard, ev.Disk, ev.Took, status)
		}
	}
	if r.BackgroundOps > 0 || r.BackgroundErrors > 0 {
		fmt.Fprintf(w, "  background total ops=%d errs=%d\n", r.BackgroundOps, r.BackgroundErrors)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintln(w, "  SLO: pass")
		return
	}
	fmt.Fprintln(w, "  SLO: FAIL")
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    violation: %s\n", v)
	}
}
