package scenariotest_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/pdl/cluster"
	"repro/pdl/scenario"
	"repro/pdl/scenario/scenariotest"
	"repro/pdl/serve"
)

// The regression table: every checked-in schedule runs against every
// target layer. One schedule file asserts the degraded/rebuild latency
// contract at the array, the wire, and the cluster simultaneously —
// the paper's claim (declustering keeps degraded service usable) is a
// property of the layout, so it must hold wherever the layout serves.

// clusterGeometry builds the canonical three-shard fleet for table
// runs. Shard-units are 64 bytes while the scenario moves 96-byte
// units: a multiple of the 32-byte array unit (concurrent workers must
// not share an array unit — sub-unit writes are read-modify-writes)
// but deliberately unaligned with the shard-unit, so ops exercise the
// cross-shard split path.
func clusterGeometry(t *testing.T, arr scenariotest.Array, opts cluster.Options) *scenario.ClusterTarget {
	t.Helper()
	tc := scenariotest.StartCluster(t, arr, 64, []int64{24, 36, 48}, cluster.ByCapacity, serve.Config{})
	return tc.NewCluster(t, 96, opts)
}

func readSchedule(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.ReadScheduleFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return scenariotest.Scale(sc, scenariotest.Ops(400))
}

func TestRegressionTable(t *testing.T) {
	schedules := []struct {
		name string
		arr  scenariotest.Array
		file string
	}{
		{"xor-1fail", scenariotest.Array{}, "fail_rebuild.json"},
		{"rs-1fail", scenariotest.Array{ParityShards: 2}, "fail_rebuild.json"},
		{"rs-2fail", scenariotest.Array{ParityShards: 2}, "fail2_rebuild.json"},
	}
	targets := []struct {
		name string
		open func(t *testing.T, arr scenariotest.Array) scenario.Target
	}{
		{"store", func(t *testing.T, arr scenariotest.Array) scenario.Target {
			return scenariotest.NewStore(t, arr)
		}},
		{"serve", func(t *testing.T, arr scenariotest.Array) scenario.Target {
			return scenariotest.NewServe(t, arr, serve.Config{})
		}},
		{"cluster", func(t *testing.T, arr scenariotest.Array) scenario.Target {
			return clusterGeometry(t, arr, cluster.Options{})
		}},
	}
	for _, sched := range schedules {
		for _, tgt := range targets {
			t.Run(sched.name+"/"+tgt.name, func(t *testing.T) {
				t.Parallel()
				sc := readSchedule(t, sched.file)
				scenariotest.Run(t, sc, tgt.open(t, sched.arr))
			})
		}
	}
}

// TestClusterKillRestart scripts a shard outage mid-traffic: kill one
// shard's server, let clients retry into the hole, revive it on the
// same port, and require clean health and checkable data afterward.
// The restart trigger pairs at_ops with a wall-clock floor so the
// revival lands inside the client retry budget (8 doubling retries
// from 5ms ≈ 1.3s).
func TestClusterKillRestart(t *testing.T) {
	tgt := clusterGeometry(t, scenariotest.Array{}, cluster.Options{
		DialTimeout:  2 * time.Second,
		Retries:      8,
		RetryBackoff: 5 * time.Millisecond,
	})
	ops := scenariotest.Ops(400)
	sc := &scenario.Scenario{
		Name:   "kill-restart",
		Seed:   271,
		Verify: true,
		Phases: []scenario.Phase{
			{
				Name: "healthy",
				Load: scenario.Load{Workers: 4, Ops: ops, WriteFrac: 0.4},
				SLO:  &scenario.SLO{},
			},
			{
				Name: "outage",
				Load: scenario.Load{Workers: 4, Ops: ops, WriteFrac: 0.4},
				Events: []scenario.Event{
					{Action: scenario.ActKill, Shard: 2, AtOps: ops / 8},
					{Action: scenario.ActRestart, Shard: 2, AtOps: ops / 8, At: 100 * time.Millisecond},
				},
				// The retry path may still surface errors at the budget's
				// edge; the phase tolerates them — the contract is that
				// "after" is clean and every modeled byte checks out.
				SLO: &scenario.SLO{MaxErrors: -1},
			},
			{
				Name: "after",
				Load: scenario.Load{Workers: 4, Ops: ops, WriteFrac: 0.4},
				SLO:  &scenario.SLO{RequireHealthy: true},
			},
		},
	}
	rep := scenariotest.Run(t, sc, tgt)
	outage := rep.Phases[1]
	for i, ev := range outage.Events {
		if ev.Err != "" {
			t.Fatalf("outage event %d (%s) failed: %s", i, ev.Action, ev.Err)
		}
	}
	if rep.Phases[2].Errors != 0 {
		t.Fatalf("post-restart phase saw %d errors", rep.Phases[2].Errors)
	}
}
