// Package scenariotest self-hosts scenario targets for Go regression
// tests: bare arrays, batching frontends, loopback pdlserve endpoints,
// and whole clusters whose shards can be killed and restarted — plus
// the op-budget scaling that lets one schedule run small in CI and
// long in the nightly soak (PDL_SCENARIO_OPS).
//
// Every constructor registers cleanups, so a test just builds a target,
// loads or declares a scenario, and calls Run. Constructors also hook a
// parity audit into cleanup: after the test, every array the harness
// provisioned must still verify, unless the scenario deliberately left
// it degraded.
package scenariotest

import (
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/pdl"
	"repro/pdl/cluster"
	"repro/pdl/scenario"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// Array describes the declustered array every harness target serves:
// (V, K) geometry with ParityShards erasure shards (0 or 1 = classic
// XOR, 2+ = Reed-Solomon). The zero value is the repo's canonical test
// array: 13 disks, stripes of 4, XOR parity, 32-byte units.
type Array struct {
	V, K         int
	ParityShards int
	UnitSize     int
	// Copies scales capacity in whole layout copies (default 1).
	Copies int
}

func (a Array) withDefaults() Array {
	if a.V == 0 {
		a.V = 13
	}
	if a.K == 0 {
		a.K = 4
	}
	if a.UnitSize == 0 {
		a.UnitSize = 32
	}
	if a.Copies == 0 {
		a.Copies = 1
	}
	return a
}

// build provisions the MemDisk-backed store and returns it with the
// per-disk byte size (what a replacement disk must hold).
func (a Array) build(tb testing.TB) (*store.Store, int64) {
	tb.Helper()
	a = a.withDefaults()
	var opts []pdl.Option
	if a.ParityShards > 1 {
		opts = append(opts, pdl.WithParityShards(a.ParityShards))
	}
	res, err := pdl.Build(a.V, a.K, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	diskUnits := a.Copies * res.Layout.Size
	s, err := store.Open(res, diskUnits, a.UnitSize, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return s, int64(diskUnits) * int64(a.UnitSize)
}

// auditParity registers a cleanup that verifies s's parity once the
// test ends — skipped if the scenario deliberately left disks failed,
// since parity is unverifiable through a hole.
func auditParity(tb testing.TB, s *store.Store) {
	tb.Cleanup(func() {
		if tb.Failed() || len(s.FailedDisks()) != 0 {
			return
		}
		if err := s.VerifyParity(); err != nil {
			tb.Errorf("scenariotest: parity audit after scenario: %v", err)
		}
	})
}

// NewStore builds a bare in-process array target.
func NewStore(tb testing.TB, a Array) *scenario.StoreTarget {
	tb.Helper()
	s, _ := a.build(tb)
	tb.Cleanup(func() { s.Close() })
	auditParity(tb, s)
	return &scenario.StoreTarget{S: s}
}

// NewFrontend builds a batching-frontend target over a fresh array.
func NewFrontend(tb testing.TB, a Array, cfg serve.Config) *scenario.FrontendTarget {
	tb.Helper()
	s, _ := a.build(tb)
	f := serve.New(s, cfg)
	tb.Cleanup(func() {
		f.Close()
		s.Close()
	})
	auditParity(tb, s)
	return &scenario.FrontendTarget{F: f}
}

// Shard is one self-hosted pdlserve endpoint: a MemDisk array behind a
// frontend behind a TCP server on loopback. The store and frontend
// outlive server restarts, so Kill and Restart model a crashed and
// revived pdlserve whose data survives.
type Shard struct {
	tb        testing.TB
	Store     *store.Store
	Front     *serve.Frontend
	Addr      string
	diskBytes int64

	mu   sync.Mutex
	srv  *serve.Server
	done chan error
}

// StartShard provisions one shard and starts serving.
func StartShard(tb testing.TB, a Array, cfg serve.Config) *Shard {
	tb.Helper()
	s, diskBytes := a.build(tb)
	sh := &Shard{tb: tb, Store: s, Front: serve.New(s, cfg), diskBytes: diskBytes}
	tb.Cleanup(func() {
		sh.Kill()
		sh.Front.Close()
		s.Close()
	})
	auditParity(tb, s)
	sh.listen("127.0.0.1:0")
	return sh
}

// newServer builds the shard's wire face with a rebuild spare hook, so
// schedules can rebuild over the admin opcodes.
func (sh *Shard) newServer() *serve.Server {
	srv := serve.NewServer(sh.Front)
	srv.Replacement = func() (store.Backend, error) {
		return store.NewMemDisk(sh.diskBytes), nil
	}
	return srv
}

func (sh *Shard) listen(addr string) {
	sh.tb.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sh.tb.Fatal(err)
	}
	sh.Addr = ln.Addr().String()
	srv := sh.newServer()
	done := make(chan error, 1)
	sh.mu.Lock()
	sh.srv, sh.done = srv, done
	sh.mu.Unlock()
	go func() { done <- srv.Serve(ln) }()
}

// Kill stops the shard's network face; its store keeps the bytes.
// Killing a dead shard is a no-op.
func (sh *Shard) Kill() error {
	sh.mu.Lock()
	srv, done := sh.srv, sh.done
	sh.srv = nil
	sh.mu.Unlock()
	if srv == nil {
		return nil
	}
	srv.Close()
	return <-done
}

// Restart revives a killed shard on its previous port. The old
// listener may still be settling, so binding retries briefly.
func (sh *Shard) Restart() error {
	sh.mu.Lock()
	running := sh.srv != nil
	sh.mu.Unlock()
	if running {
		return nil
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", sh.Addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return err
	}
	srv := sh.newServer()
	done := make(chan error, 1)
	sh.mu.Lock()
	sh.srv, sh.done = srv, done
	sh.mu.Unlock()
	go func() { done <- srv.Serve(ln) }()
	return nil
}

// NewServe builds a loopback-TCP target: one shard served over the
// wire through a serve.Client.
func NewServe(tb testing.TB, a Array, cfg serve.Config) *scenario.ClientTarget {
	tb.Helper()
	sh := StartShard(tb, a, cfg)
	c, err := serve.Dial(sh.Addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	return &scenario.ClientTarget{C: c}
}

// Cluster is a self-hosted shard fleet plus the manifest placing a
// byte namespace across it.
type Cluster struct {
	Shards   []*Shard
	Manifest *cluster.Manifest
}

// StartCluster provisions one shard per entry of shardUnits, each an
// Array from a, and a manifest striping unitBytes-sized shard-units
// over them.
func StartCluster(tb testing.TB, a Array, unitBytes int64, shardUnits []int64, policy cluster.Policy, cfg serve.Config) *Cluster {
	tb.Helper()
	a = a.withDefaults()
	tc := &Cluster{Manifest: &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: unitBytes,
		Policy:    policy,
	}}
	for _, units := range shardUnits {
		// Scale layout copies until the shard's capacity covers its
		// placement.
		sa := a
		for {
			sh := probeSize(tb, sa)
			if sh >= units*unitBytes {
				break
			}
			sa.Copies *= 2
		}
		sh := StartShard(tb, sa, cfg)
		tc.Shards = append(tc.Shards, sh)
		tc.Manifest.Shards = append(tc.Manifest.Shards, cluster.ShardInfo{
			Addr:  sh.Addr,
			Units: units,
			State: cluster.ShardHealthy,
		})
	}
	return tc
}

// probeSize computes the logical byte size an Array would serve without
// provisioning it.
func probeSize(tb testing.TB, a Array) int64 {
	tb.Helper()
	a = a.withDefaults()
	var opts []pdl.Option
	if a.ParityShards > 1 {
		opts = append(opts, pdl.WithParityShards(a.ParityShards))
	}
	res, err := pdl.Build(a.V, a.K, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := res.NewMapper(a.Copies * res.Layout.Size)
	if err != nil {
		tb.Fatal(err)
	}
	return int64(m.DataUnits()) * int64(a.UnitSize)
}

// NewCluster opens a client over the fleet and wraps it as a scenario
// target whose kill/restart events drive the harness shards. unit is
// the bytes one scenario op moves (see scenario.ClusterTarget for the
// alignment rules); opts should carry generous Retries for schedules
// with kill windows.
func (tc *Cluster) NewCluster(tb testing.TB, unit int64, opts cluster.Options) *scenario.ClusterTarget {
	tb.Helper()
	c, err := cluster.Open(tc.Manifest, opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	tgt := scenario.NewClusterTarget(c, unit)
	tgt.OnKill = func(shard int) error {
		if shard < 0 || shard >= len(tc.Shards) {
			return errShard(shard, len(tc.Shards))
		}
		return tc.Shards[shard].Kill()
	}
	tgt.OnRestart = func(shard int) error {
		if shard < 0 || shard >= len(tc.Shards) {
			return errShard(shard, len(tc.Shards))
		}
		return tc.Shards[shard].Restart()
	}
	tb.Cleanup(func() { tgt.Close() })
	return tgt
}

func errShard(shard, n int) error {
	return &shardRangeError{shard: shard, n: n}
}

type shardRangeError struct{ shard, n int }

func (e *shardRangeError) Error() string {
	return "scenariotest: shard " + strconv.Itoa(e.shard) + " outside fleet of " + strconv.Itoa(e.n)
}

// Ops returns the per-phase op budget regression scenarios should use:
// def normally, PDL_SCENARIO_OPS when set (the nightly workflow cranks
// it up for the long -race table), and a quarter of def under -short.
func Ops(def int64) int64 {
	if v := os.Getenv("PDL_SCENARIO_OPS"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		if def = def / 4; def < 50 {
			def = 50
		}
	}
	return def
}

// Scale returns a deep copy of sc with every phase's op budget set to
// ops and each event's at_ops trigger rescaled proportionally, so one
// checked-in schedule runs small in CI and long in the nightly without
// its events drifting out of the load window.
func Scale(sc *scenario.Scenario, ops int64) *scenario.Scenario {
	out := *sc
	out.Phases = make([]scenario.Phase, len(sc.Phases))
	for i, p := range sc.Phases {
		q := p
		if p.Load.Ops > 0 && p.Load.Ops != ops {
			q.Load.Ops = ops
			q.Events = make([]scenario.Event, len(p.Events))
			for j, ev := range p.Events {
				if ev.AtOps > 0 {
					ev.AtOps = ev.AtOps * ops / p.Load.Ops
					if ev.AtOps < 1 {
						ev.AtOps = 1
					}
				}
				q.Events[j] = ev
			}
		}
		if p.SLO != nil {
			slo := *p.SLO
			q.SLO = &slo
		}
		out.Phases[i] = q
	}
	if sc.Background != nil {
		bg := *sc.Background
		out.Background = &bg
	}
	return &out
}

// Run executes the scenario against the target, logs the report table,
// and fails the test on any SLO violation, data mismatch, or engine
// error. It returns the report for extra assertions.
func Run(tb testing.TB, sc *scenario.Scenario, tgt scenario.Target) *scenario.Report {
	tb.Helper()
	rep, err := scenario.Run(sc, tgt)
	if rep != nil {
		var b reportBuf
		rep.WriteText(&b)
		tb.Log("\n" + string(b))
	}
	if err != nil {
		tb.Fatalf("scenariotest: %s on %s: %v", sc.Name, tgt.Name(), err)
	}
	return rep
}

type reportBuf []byte

func (b *reportBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
