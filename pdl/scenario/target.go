package scenario

import (
	"context"
	"fmt"
	"sync"

	"repro/pdl/cluster"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// Target is a live system under test: unit-addressed reads and writes
// plus the geometry the workload needs. One scenario runs unchanged
// against any Target, so the same schedule file exercises an in-process
// array, a TCP endpoint, and a whole cluster.
type Target interface {
	// Name labels the target in reports ("store", "serve", "cluster").
	Name() string
	// UnitSize is the payload size of one op in bytes.
	UnitSize() int
	// Capacity is how many logical units the workload may address.
	Capacity() int
	// Read fills dst (UnitSize bytes) from the logical unit, on the
	// background class when background is set and the target has one.
	Read(logical int, dst []byte, background bool) error
	// Write stores src (UnitSize bytes) to the logical unit.
	Write(logical int, src []byte, background bool) error
}

// FaultInjector is implemented by targets whose disks the schedule can
// fail and rebuild. Single-array targets require shard 0.
type FaultInjector interface {
	FailDisk(shard, disk int) error
	// RebuildDisk rebuilds shard's lowest failed disk onto a fresh
	// replacement, blocking until done.
	RebuildDisk(shard int) error
}

// ShardController is implemented by targets whose serving processes the
// schedule can kill and revive (cluster targets).
type ShardController interface {
	KillShard(shard int) error
	RestartShard(shard int) error
}

// HealthReporter is implemented by targets that can answer the
// RequireHealthy SLO clause.
type HealthReporter interface {
	// FailedDisks counts currently-failed disks across every shard.
	FailedDisks() (int, error)
}

// oneShard rejects a shard index on a single-array target.
func oneShard(target string, shard int) error {
	if shard != 0 {
		return fmt.Errorf("scenario: %s target has one array; shard %d does not exist", target, shard)
	}
	return nil
}

// replacement provisions a fresh in-memory spare sized for s's disks.
func replacement(s *store.Store) store.Backend {
	return store.NewMemDisk(int64(s.Mapper().DiskUnits()) * int64(s.UnitSize()))
}

// StoreTarget runs scenarios against a bare store.Store — the fastest
// target, with no batching or network between the workload and the
// array. It has no priority classes; background ops share the same
// path.
type StoreTarget struct {
	S *store.Store
}

func (t *StoreTarget) Name() string  { return "store" }
func (t *StoreTarget) UnitSize() int { return t.S.UnitSize() }
func (t *StoreTarget) Capacity() int { return t.S.Capacity() }

func (t *StoreTarget) Read(logical int, dst []byte, _ bool) error {
	return t.S.Read(logical, dst)
}

func (t *StoreTarget) Write(logical int, src []byte, _ bool) error {
	return t.S.Write(logical, src)
}

func (t *StoreTarget) FailDisk(shard, disk int) error {
	if err := oneShard("store", shard); err != nil {
		return err
	}
	return t.S.Fail(disk)
}

func (t *StoreTarget) RebuildDisk(shard int) error {
	if err := oneShard("store", shard); err != nil {
		return err
	}
	return t.S.Rebuild(replacement(t.S))
}

func (t *StoreTarget) FailedDisks() (int, error) {
	return len(t.S.FailedDisks()), nil
}

// FrontendTarget runs scenarios through a serve.Frontend: ops ride the
// batching queues with real priority classes, but no network.
type FrontendTarget struct {
	F *serve.Frontend
}

func (t *FrontendTarget) Name() string  { return "frontend" }
func (t *FrontendTarget) UnitSize() int { return t.F.Store().UnitSize() }
func (t *FrontendTarget) Capacity() int { return t.F.Store().Capacity() }

func (t *FrontendTarget) do(kind serve.Kind, logical int, buf []byte, background bool) error {
	class := serve.Foreground
	if background {
		class = serve.Background
	}
	return t.F.Do(context.Background(), serve.Op{Kind: kind, Class: class, Logical: logical, Buf: buf})
}

func (t *FrontendTarget) Read(logical int, dst []byte, background bool) error {
	return t.do(serve.Read, logical, dst, background)
}

func (t *FrontendTarget) Write(logical int, src []byte, background bool) error {
	return t.do(serve.Write, logical, src, background)
}

func (t *FrontendTarget) FailDisk(shard, disk int) error {
	if err := oneShard("frontend", shard); err != nil {
		return err
	}
	return t.F.Store().Fail(disk)
}

func (t *FrontendTarget) RebuildDisk(shard int) error {
	if err := oneShard("frontend", shard); err != nil {
		return err
	}
	return t.F.Store().Rebuild(replacement(t.F.Store()))
}

func (t *FrontendTarget) FailedDisks() (int, error) {
	return len(t.F.Store().FailedDisks()), nil
}

// ClientTarget runs scenarios against a pdlserve TCP endpoint through
// a serve.Client: the full wire path. Fail and rebuild ride the admin
// opcodes, so the server must have a Replacement (or RebuildDisk) hook
// for rebuild events to succeed.
type ClientTarget struct {
	C *serve.Client
}

func (t *ClientTarget) Name() string  { return "serve" }
func (t *ClientTarget) UnitSize() int { return t.C.UnitSize() }
func (t *ClientTarget) Capacity() int { return t.C.Capacity() }

func classOf(background bool) serve.Class {
	if background {
		return serve.Background
	}
	return serve.Foreground
}

func (t *ClientTarget) Read(logical int, dst []byte, background bool) error {
	return t.C.ReadClass(logical, dst, classOf(background))
}

func (t *ClientTarget) Write(logical int, src []byte, background bool) error {
	return t.C.WriteClass(logical, src, classOf(background))
}

func (t *ClientTarget) FailDisk(shard, disk int) error {
	if err := oneShard("serve", shard); err != nil {
		return err
	}
	return t.C.Fail(disk)
}

func (t *ClientTarget) RebuildDisk(shard int) error {
	if err := oneShard("serve", shard); err != nil {
		return err
	}
	return t.C.Rebuild()
}

func (t *ClientTarget) FailedDisks() (int, error) {
	st, err := t.C.Stats()
	if err != nil {
		return 0, err
	}
	return len(st.Store.FailedDisks), nil
}

// ClusterTarget runs scenarios against a sharded namespace through a
// cluster.Client. Each engine op moves Unit bytes at a Unit-aligned
// offset; choosing a Unit that is not a multiple of the manifest's
// shard-unit makes ops span shard boundaries, which is exactly the
// hard case. With concurrent workers, Unit must still be a multiple of
// the shards' array stripe-unit: sub-unit writes are read-modify-write
// inside a shard, so two workers sharing one array unit would race.
// Fail/rebuild events dial the addressed shard from the manifest and
// ride pdlserve's admin opcodes; kill/restart delegate to the
// OnKill/OnRestart hooks, which own the shard processes (in tests, the
// self-hosted harness; in a deployment, whatever supervises the
// shards).
type ClusterTarget struct {
	C *cluster.Client

	// Unit is the bytes one op moves; NewClusterTarget defaults it to
	// the manifest's shard-unit size.
	Unit int64

	// OnKill and OnRestart implement ActKill/ActRestart; a nil hook
	// fails the event.
	OnKill, OnRestart func(shard int) error

	mu    sync.Mutex
	admin map[int]*serve.Client
}

// NewClusterTarget wraps an open cluster client. unit <= 0 defaults to
// the manifest's shard-unit size.
func NewClusterTarget(c *cluster.Client, unit int64) *ClusterTarget {
	if unit <= 0 {
		unit = c.UnitBytes()
	}
	return &ClusterTarget{C: c, Unit: unit, admin: make(map[int]*serve.Client)}
}

func (t *ClusterTarget) Name() string  { return "cluster" }
func (t *ClusterTarget) UnitSize() int { return int(t.Unit) }
func (t *ClusterTarget) Capacity() int { return int(t.C.Size() / t.Unit) }

func (t *ClusterTarget) Read(logical int, dst []byte, background bool) error {
	n, err := t.C.ReadAtClass(dst, int64(logical)*t.Unit, classOf(background))
	if err == nil && n != len(dst) {
		return fmt.Errorf("scenario: cluster read at unit %d: short read %d of %d", logical, n, len(dst))
	}
	return err
}

func (t *ClusterTarget) Write(logical int, src []byte, background bool) error {
	n, err := t.C.WriteAtClass(src, int64(logical)*t.Unit, classOf(background))
	if err == nil && n != len(src) {
		return fmt.Errorf("scenario: cluster write at unit %d: short write %d of %d", logical, n, len(src))
	}
	return err
}

// shardAdmin returns a cached admin connection to the shard's address.
func (t *ClusterTarget) shardAdmin(shard int) (*serve.Client, error) {
	man := t.C.Manifest()
	if shard < 0 || shard >= len(man.Shards) {
		return nil, fmt.Errorf("scenario: cluster has %d shards; shard %d does not exist", len(man.Shards), shard)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.admin[shard]; ok {
		return c, nil
	}
	c, err := serve.Dial(man.Shards[shard].Addr, serve.WithConns(1))
	if err != nil {
		return nil, fmt.Errorf("scenario: dial shard %d admin: %w", shard, err)
	}
	t.admin[shard] = c
	return c, nil
}

// dropAdmin closes and forgets the cached admin connection to shard —
// called around kill/restart, whose whole point is severing that TCP.
func (t *ClusterTarget) dropAdmin(shard int) {
	t.mu.Lock()
	c := t.admin[shard]
	delete(t.admin, shard)
	t.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (t *ClusterTarget) FailDisk(shard, disk int) error {
	c, err := t.shardAdmin(shard)
	if err != nil {
		return err
	}
	return c.Fail(disk)
}

func (t *ClusterTarget) RebuildDisk(shard int) error {
	c, err := t.shardAdmin(shard)
	if err != nil {
		return err
	}
	return c.Rebuild()
}

func (t *ClusterTarget) KillShard(shard int) error {
	if t.OnKill == nil {
		return fmt.Errorf("scenario: cluster target has no kill hook for shard %d", shard)
	}
	t.dropAdmin(shard)
	return t.OnKill(shard)
}

func (t *ClusterTarget) RestartShard(shard int) error {
	if t.OnRestart == nil {
		return fmt.Errorf("scenario: cluster target has no restart hook for shard %d", shard)
	}
	t.dropAdmin(shard)
	return t.OnRestart(shard)
}

func (t *ClusterTarget) FailedDisks() (int, error) {
	total := 0
	for s := 0; s < t.C.Shards(); s++ {
		c, err := t.shardAdmin(s)
		if err != nil {
			return 0, err
		}
		st, err := c.Stats()
		if err != nil {
			return 0, err
		}
		total += len(st.Store.FailedDisks)
	}
	return total, nil
}

// Close releases the target's cached admin connections (not the
// cluster client itself, which the caller owns).
func (t *ClusterTarget) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for s, c := range t.admin {
		c.Close()
		delete(t.admin, s)
	}
	return nil
}
