package scenario_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/pdl/scenario"
)

// TestScheduleRoundTrip proves a scenario survives the JSON schedule
// format with durations rendered as human strings.
func TestScheduleRoundTrip(t *testing.T) {
	sc := failRebuildScenario(99)
	sc.Phases[2].SLO.MaxP99Ratio = 16
	sc.Phases[2].SLO.P99RatioTo = "healthy"
	sc.Phases[2].Load.Duration = 0
	sc.Background = &scenario.Load{Workers: 1, WriteFrac: 0.25}
	sc.Phases[0].Events = []scenario.Event{{Action: scenario.ActPauseBackground, At: 250 * time.Millisecond}}

	b, err := scenario.EncodeSchedule(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"at": "250ms"`) {
		t.Errorf("duration not rendered as a string:\n%s", b)
	}
	if !strings.Contains(string(b), `"max_rebuild": "1m0s"`) {
		t.Errorf("SLO duration not rendered as a string:\n%s", b)
	}

	got, err := scenario.DecodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || got.Seed != sc.Seed || !got.Verify {
		t.Fatalf("header diverges: %+v", got)
	}
	if len(got.Phases) != len(sc.Phases) {
		t.Fatalf("decoded %d phases, want %d", len(got.Phases), len(sc.Phases))
	}
	if got.Phases[0].Events[0].At != 250*time.Millisecond {
		t.Errorf("event at = %v, want 250ms", got.Phases[0].Events[0].At)
	}
	if got.Phases[2].SLO.MaxRebuild != time.Minute {
		t.Errorf("max_rebuild = %v, want 1m", got.Phases[2].SLO.MaxRebuild)
	}
	if got.Phases[2].SLO.MaxP99Ratio != 16 || got.Phases[2].SLO.P99RatioTo != "healthy" {
		t.Errorf("ratio clause diverges: %+v", got.Phases[2].SLO)
	}
	if got.Background == nil || got.Background.Workers != 1 {
		t.Errorf("background load diverges: %+v", got.Background)
	}

	// A second encode is byte-identical: the format is canonical.
	again, err := scenario.EncodeSchedule(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(b) {
		t.Error("re-encode diverges from the first encoding")
	}
}

// TestScheduleHostile pins decoder validation: every malformed file is
// rejected with an error, never a panic or a silently-wrong scenario.
func TestScheduleHostile(t *testing.T) {
	good := `{"version":1,"name":"x","seed":1,"phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`
	if _, err := scenario.DecodeSchedule([]byte(good)); err != nil {
		t.Fatalf("baseline schedule rejected: %v", err)
	}
	cases := map[string]string{
		"empty":            ``,
		"not json":         `{{{`,
		"no version":       `{"name":"x","seed":1,"phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`,
		"unknown field":    `{"version":1,"name":"x","bogus":1,"phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`,
		"no phases":        `{"version":1,"name":"x","phases":[]}`,
		"no name":          `{"version":1,"phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`,
		"dup phase":        `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10}},{"name":"p","load":{"workers":1,"ops":10}}]}`,
		"bad action":       `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10},"events":[{"action":"explode"}]}]}`,
		"no budget":        `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1}}]}`,
		"bad write frac":   `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10,"write_frac":2}}]}`,
		"bad duration":     `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"duration":"yesterday"}}]}`,
		"at_ops > budget":  `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10},"events":[{"action":"fail","at_ops":11}]}]}`,
		"ratio w/o target": `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10},"slo":{"max_p99_ratio":3}}]}`,
		"ratio to later":   `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10},"slo":{"max_p99_ratio":3,"p99_ratio_to":"q"}},{"name":"q","load":{"workers":1,"ops":10}}]}`,
		"workers flood":    `{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1000000,"ops":10}}]}`,
	}
	for name, in := range cases {
		if _, err := scenario.DecodeSchedule([]byte(in)); err == nil {
			t.Errorf("%s: decoder accepted hostile schedule", name)
		}
	}
	skew := `{"version":99,"name":"x","phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`
	if _, err := scenario.DecodeSchedule([]byte(skew)); !errors.Is(err, scenario.ErrScheduleVersion) {
		t.Errorf("version skew err = %v, want ErrScheduleVersion", err)
	}
}

// FuzzDecodeSchedule pins that hostile schedule bytes never panic, and
// that anything that decodes re-encodes to a schedule that decodes to
// the same value.
func FuzzDecodeSchedule(f *testing.F) {
	seed, err := scenario.EncodeSchedule(failRebuildScenario(3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"name":"x","seed":1,"phases":[{"name":"p","load":{"workers":1,"ops":10}}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"name":"p","load":{"workers":1,"duration":"3s"},"events":[{"action":"rebuild","at":"1s"}]}]}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		sc, err := scenario.DecodeSchedule(b)
		if err != nil {
			return
		}
		enc, err := scenario.EncodeSchedule(sc)
		if err != nil {
			t.Fatalf("decoded schedule failed to encode: %v", err)
		}
		sc2, err := scenario.DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("re-encoded schedule failed to decode: %v", err)
		}
		if sc2.Name != sc.Name || sc2.Seed != sc.Seed || len(sc2.Phases) != len(sc.Phases) {
			t.Fatalf("round trip diverges: %+v vs %+v", sc, sc2)
		}
	})
}
