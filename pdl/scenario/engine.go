package scenario

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdl/obs"
	"repro/pdl/sim"
)

// ErrSLO reports that a scenario ran to completion but violated at
// least one declared SLO clause; the returned Report lists them. It
// supports errors.Is.
var ErrSLO = errors.New("scenario: SLO violated")

// ErrVerify reports that verify mode caught a data mismatch: a read
// returned bytes other than the last modeled write, or the final sweep
// did. It supports errors.Is.
var ErrVerify = errors.New("scenario: data verification failed")

// eventPoll is how often the coordinator re-checks an at_ops trigger.
// It bounds trigger latency, not determinism: events fire in schedule
// order regardless.
const eventPoll = 200 * time.Microsecond

// Run executes the scenario against the target and judges the declared
// SLOs. The report is returned even on error: alongside ErrSLO it
// carries the violated clauses, alongside ErrVerify the mismatches.
// Any other error means the scenario could not run at all.
func Run(sc *Scenario, tgt Target) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &engine{sc: sc, tgt: tgt, p99: make(map[string]time.Duration)}
	if sc.Verify {
		if err := e.initVerify(); err != nil {
			return nil, err
		}
	}
	return e.run()
}

// engine is one scenario execution: the coordinator goroutine (run)
// fires events strictly in schedule order while worker goroutines
// drive the target, so two runs of one scenario produce identical
// event orderings by construction.
type engine struct {
	sc  *Scenario
	tgt Target

	// Cumulative latency histograms; per-phase windows are carved out
	// with HistSnapshot.Sub at phase boundaries.
	fgHist, bgHist obs.Hist

	// p99 remembers each phase's foreground p99 for ratio clauses.
	p99 map[string]time.Duration

	// Background workload machinery.
	bgGate gate
	bgStop chan struct{}
	bgWG   sync.WaitGroup
	bgOps  atomic.Int64
	bgErrs atomic.Int64

	// Verify-mode state (nil lanes when off).
	lanes     []laneModel
	verifyMu  sync.Mutex
	verifyBad []string
}

// laneModel is one worker lane's view of the data: the payload key of
// the last write to each logical unit the lane owns. Lanes partition
// the address space (logical ≡ lane mod len(lanes)), so no two workers
// ever race on a unit and reads are always checkable.
type laneModel struct {
	idx  int
	keys map[int]uint64
	seq  uint64
}

// initVerify sets up lane-striped ownership. Verify mode needs a
// constant worker count across phases — the lane striping is the
// correctness argument, and it cannot survive the partition changing
// mid-run.
func (e *engine) initVerify() error {
	w := e.sc.Phases[0].Load.Workers
	for i := range e.sc.Phases {
		if e.sc.Phases[i].Load.Workers != w {
			return fmt.Errorf("scenario: verify mode needs a constant worker count; phase %q has %d, phase %q has %d",
				e.sc.Phases[0].Name, w, e.sc.Phases[i].Name, e.sc.Phases[i].Load.Workers)
		}
	}
	lanes := w
	if e.sc.Background != nil {
		lanes += e.sc.Background.Workers
	}
	if e.tgt.Capacity() < lanes {
		return fmt.Errorf("scenario: verify mode: capacity %d below %d lanes", e.tgt.Capacity(), lanes)
	}
	e.lanes = make([]laneModel, lanes)
	for i := range e.lanes {
		e.lanes[i].idx = i
		e.lanes[i].keys = make(map[int]uint64)
	}
	return nil
}

func (e *engine) run() (*Report, error) {
	rep := &Report{Scenario: e.sc.Name, Target: e.tgt.Name(), Seed: e.sc.Seed}
	e.startBackground()
	for i := range e.sc.Phases {
		rep.Phases = append(rep.Phases, e.runPhase(i))
	}
	e.stopBackground()
	rep.BackgroundOps = e.bgOps.Load()
	rep.BackgroundErrors = e.bgErrs.Load()
	if e.sc.Verify {
		e.sweep()
	}
	for i := range rep.Phases {
		rep.Violations = append(rep.Violations, rep.Phases[i].Violations...)
	}
	if len(e.verifyBad) > 0 {
		rep.Violations = append(rep.Violations, e.verifyBad...)
		return rep, ErrVerify
	}
	if len(rep.Violations) > 0 {
		return rep, ErrSLO
	}
	return rep, nil
}

// runPhase drives one phase: snapshot the histograms, launch the
// workers, fire the events in order, wait for the load to finish, and
// judge the latency window against the SLO.
func (e *engine) runPhase(idx int) PhaseReport {
	ph := &e.sc.Phases[idx]
	rep := PhaseReport{Name: ph.Name}
	var fgBefore, bgBefore obs.HistSnapshot
	e.fgHist.Load(&fgBefore)
	e.bgHist.Load(&bgBefore)

	start := time.Now()
	var (
		claimed, done, errs atomic.Int64
		alive               atomic.Int64
		wg                  sync.WaitGroup
	)
	alive.Store(int64(ph.Load.Workers))
	for w := 0; w < ph.Load.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer alive.Add(-1)
			e.worker(idx, ph, w, start, &claimed, &done, &errs)
		}(w)
	}

	for j := range ph.Events {
		ev := &ph.Events[j]
		for done.Load() < ev.AtOps && alive.Load() > 0 {
			time.Sleep(eventPoll)
		}
		if ev.At > 0 {
			if d := time.Until(start.Add(ev.At)); d > 0 {
				time.Sleep(d)
			}
		}
		rec := e.fire(*ev)
		rep.Events = append(rep.Events, rec)
		if rec.Err != "" {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s/%s: event %d (%s) failed: %s", e.tgt.Name(), ph.Name, j, ev.Action, rec.Err))
		}
	}
	wg.Wait()

	rep.Ops = done.Load()
	rep.Errors = errs.Load()
	rep.Took = time.Since(start)
	var fgAfter, bgAfter obs.HistSnapshot
	e.fgHist.Load(&fgAfter)
	e.bgHist.Load(&bgAfter)
	fgWin := fgAfter.Sub(&fgBefore)
	bgWin := bgAfter.Sub(&bgBefore)
	rep.Foreground = fgWin.Summary()
	rep.Background = bgWin.Summary()
	e.p99[ph.Name] = rep.Foreground.P99
	e.judge(ph, &rep)
	return rep
}

// worker is one foreground submitter: claim a slot in the phase budget,
// draw an op from the seeded generator, drive the target, record the
// latency. A worker exits on its first op error — the rest of the pool
// absorbs the remaining budget, so a phase never hangs on a sick
// target.
func (e *engine) worker(phaseIdx int, ph *Phase, w int, start time.Time, claimed, done, errs *atomic.Int64) {
	gen := e.loadGen(&ph.Load, phaseSeed(e.sc.Seed, phaseIdx, w))
	lane := e.lane(w)
	buf := make([]byte, e.tgt.UnitSize())
	for {
		if ph.Load.Ops > 0 && claimed.Add(1) > ph.Load.Ops {
			return
		}
		if ph.Load.Duration > 0 && time.Since(start) >= ph.Load.Duration {
			return
		}
		if err := e.step(gen, lane, buf, false); err != nil {
			done.Add(1)
			errs.Add(1)
			return
		}
		done.Add(1)
	}
}

// step executes one generated op against the target, with verify-mode
// modeling and checking when a lane is assigned.
func (e *engine) step(gen sim.Generator, lane *laneModel, buf []byte, background bool) error {
	op := gen.Next()
	logical := op.Logical
	if lane != nil {
		logical = e.laneLogical(lane, op.Logical)
	}
	var key uint64
	if op.Kind == sim.Write {
		if lane != nil {
			lane.seq++
			key = payloadKey(e.sc.Seed, logical, lane.seq)
		} else {
			key = payloadKey(e.sc.Seed, logical, uint64(op.Logical))
		}
		fill(buf, key)
	}
	t0 := time.Now()
	var err error
	if op.Kind == sim.Write {
		err = e.tgt.Write(logical, buf, background)
	} else {
		err = e.tgt.Read(logical, buf, background)
	}
	d := time.Since(t0)
	if err != nil {
		if lane != nil && op.Kind == sim.Write {
			// A failed write may still have partially landed (a cluster
			// write errors after some shards accepted their pieces). The
			// unit's contents are now unknowable; drop it from the model
			// so neither later reads nor the sweep assert on it.
			delete(lane.keys, logical)
		}
		return err
	}
	if background {
		e.bgHist.Record(d)
	} else {
		e.fgHist.Record(d)
	}
	if lane != nil {
		if op.Kind == sim.Write {
			lane.keys[logical] = key
		} else if want, ok := lane.keys[logical]; ok {
			if !check(buf, want) {
				e.verifyFail(fmt.Sprintf("%s: unit %d: read diverges from last modeled write", e.tgt.Name(), logical))
				return ErrVerify
			}
		}
	}
	return nil
}

// lane returns fg worker w's lane model, or nil when verify is off.
func (e *engine) lane(w int) *laneModel {
	if e.lanes == nil {
		return nil
	}
	return &e.lanes[w]
}

// laneLogical maps a generated address into the lane's stripe of the
// namespace: slot s of lane l is logical l + s*lanes.
func (e *engine) laneLogical(lane *laneModel, generated int) int {
	n := len(e.lanes)
	slots := e.tgt.Capacity() / n
	return lane.idx + (generated%slots)*n
}

// loadGen builds the seeded generator a load asks for.
func (e *engine) loadGen(l *Load, seed uint64) sim.Generator {
	n := e.tgt.Capacity()
	if e.lanes != nil {
		// Verify mode generates slots within a lane's stripe.
		n = e.tgt.Capacity() / len(e.lanes)
	}
	if l.ZipfTheta > 0 {
		return sim.NewZipf(n, l.ZipfTheta, l.WriteFrac, seed)
	}
	return sim.NewUniform(n, l.WriteFrac, seed)
}

// fire executes one scheduled event against the target.
func (e *engine) fire(ev Event) EventRecord {
	rec := EventRecord{Action: ev.Action, Shard: ev.Shard, Disk: ev.Disk}
	t0 := time.Now()
	err := e.dispatch(ev)
	rec.Took = time.Since(t0)
	if err != nil {
		rec.Err = err.Error()
	}
	return rec
}

func (e *engine) dispatch(ev Event) error {
	switch ev.Action {
	case ActFail:
		fi, ok := e.tgt.(FaultInjector)
		if !ok {
			return fmt.Errorf("target %s cannot inject disk faults", e.tgt.Name())
		}
		return fi.FailDisk(ev.Shard, ev.Disk)
	case ActRebuild:
		fi, ok := e.tgt.(FaultInjector)
		if !ok {
			return fmt.Errorf("target %s cannot rebuild", e.tgt.Name())
		}
		return fi.RebuildDisk(ev.Shard)
	case ActKill:
		sc, ok := e.tgt.(ShardController)
		if !ok {
			return fmt.Errorf("target %s cannot kill shards", e.tgt.Name())
		}
		return sc.KillShard(ev.Shard)
	case ActRestart:
		sc, ok := e.tgt.(ShardController)
		if !ok {
			return fmt.Errorf("target %s cannot restart shards", e.tgt.Name())
		}
		return sc.RestartShard(ev.Shard)
	case ActPauseBackground:
		e.bgGate.pause()
		return nil
	case ActResumeBackground:
		e.bgGate.resume()
		return nil
	}
	return fmt.Errorf("unknown action %q", ev.Action)
}

// judge checks the phase's latency window against its SLO.
func (e *engine) judge(ph *Phase, rep *PhaseReport) {
	s := ph.SLO
	if s == nil {
		return
	}
	bad := func(format string, args ...any) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%s/%s: ", e.tgt.Name(), ph.Name)+fmt.Sprintf(format, args...))
	}
	p99 := rep.Foreground.P99
	if s.MaxP99 > 0 && p99 > s.MaxP99 {
		bad("p99 %v exceeds %v", p99, s.MaxP99)
	}
	if s.MaxP99Ratio > 0 {
		base := e.p99[s.P99RatioTo]
		switch {
		case base == 0:
			bad("reference phase %q recorded no latency to compare against", s.P99RatioTo)
		case float64(p99) > s.MaxP99Ratio*float64(base) && p99 > s.P99Floor:
			bad("p99 %v is %.2fx of phase %q p99 %v, over the %.2fx budget",
				p99, float64(p99)/float64(base), s.P99RatioTo, base, s.MaxP99Ratio)
		}
	}
	if s.MaxRebuild > 0 {
		for i := range rep.Events {
			ev := &rep.Events[i]
			if ev.Action == ActRebuild && ev.Err == "" && ev.Took > s.MaxRebuild {
				bad("rebuild took %v, over the %v budget", ev.Took, s.MaxRebuild)
			}
		}
	}
	if s.MaxErrors >= 0 && rep.Errors > s.MaxErrors {
		bad("%d op errors, over the %d allowed", rep.Errors, s.MaxErrors)
	}
	if s.RequireHealthy {
		hr, ok := e.tgt.(HealthReporter)
		switch {
		case !ok:
			bad("target cannot report disk health for require_healthy")
		default:
			n, err := hr.FailedDisks()
			if err != nil {
				bad("health check failed: %v", err)
			} else if n != 0 {
				bad("%d disks still failed at phase end", n)
			}
		}
	}
}

// startBackground launches the scenario-wide background workload.
func (e *engine) startBackground() {
	e.bgGate.init()
	e.bgStop = make(chan struct{})
	if e.sc.Background == nil {
		return
	}
	fgLanes := 0
	if e.lanes != nil {
		fgLanes = e.sc.Phases[0].Load.Workers
	}
	for w := 0; w < e.sc.Background.Workers; w++ {
		e.bgWG.Add(1)
		go func(w int) {
			defer e.bgWG.Done()
			gen := e.loadGen(e.sc.Background, phaseSeed(e.sc.Seed, -1, w))
			var lane *laneModel
			if e.lanes != nil {
				lane = &e.lanes[fgLanes+w]
			}
			buf := make([]byte, e.tgt.UnitSize())
			for {
				select {
				case <-e.bgStop:
					return
				default:
				}
				if !e.bgGate.wait(e.bgStop) {
					return
				}
				if err := e.step(gen, lane, buf, true); err != nil {
					e.bgErrs.Add(1)
					// A sick window (mid-kill) must not spin: back off
					// briefly and retry; the gate and stop channel still
					// govern the loop.
					time.Sleep(time.Millisecond)
					continue
				}
				e.bgOps.Add(1)
			}
		}(w)
	}
}

// stopBackground resumes a paused gate (so no worker is stranded) and
// stops the background pool.
func (e *engine) stopBackground() {
	e.bgGate.resume()
	close(e.bgStop)
	e.bgWG.Wait()
}

// sweep is verify mode's final pass: re-read every unit any lane ever
// wrote and compare it to the last modeled payload.
func (e *engine) sweep() {
	buf := make([]byte, e.tgt.UnitSize())
	for l := range e.lanes {
		for logical, key := range e.lanes[l].keys {
			if err := e.tgt.Read(logical, buf, false); err != nil {
				e.verifyFail(fmt.Sprintf("%s: sweep: unit %d: %v", e.tgt.Name(), logical, err))
				continue
			}
			if !check(buf, key) {
				e.verifyFail(fmt.Sprintf("%s: sweep: unit %d diverges from last modeled write", e.tgt.Name(), logical))
			}
		}
	}
}

func (e *engine) verifyFail(msg string) {
	e.verifyMu.Lock()
	defer e.verifyMu.Unlock()
	// Cap the list; one corruption usually cascades.
	if len(e.verifyBad) < 16 {
		e.verifyBad = append(e.verifyBad, msg)
	}
}

// gate is the pause/resume valve for background workers: open (closed
// channel) by default, swapped for a fresh channel while paused.
type gate struct {
	mu     sync.Mutex
	ch     chan struct{}
	paused bool
}

func (g *gate) init() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch = closedChan()
	g.paused = false
}

func (g *gate) pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.paused {
		g.paused = true
		g.ch = make(chan struct{})
	}
}

func (g *gate) resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.paused {
		g.paused = false
		close(g.ch)
	}
}

// wait blocks while the gate is paused; false means stop closed first.
func (g *gate) wait(stop <-chan struct{}) bool {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-stop:
		return false
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// phaseSeed derives a worker's generator seed: one scenario seed fans
// out to distinct, reproducible per-worker streams.
func phaseSeed(seed uint64, phase, worker int) uint64 {
	s := seed ^ 0x9E3779B97F4A7C15
	s ^= uint64(phase+2) * 0xBF58476D1CE4E5B9
	s ^= uint64(worker+1) * 0x94D049BB133111EB
	return s | 1
}

// payloadKey derives the deterministic payload identity of one write.
func payloadKey(seed uint64, logical int, seq uint64) uint64 {
	s := seed ^ uint64(logical)*0x9E3779B97F4A7C15 ^ seq*0xBF58476D1CE4E5B9
	return s | 1
}

// fill writes key's pseudorandom payload into buf.
func fill(buf []byte, key uint64) {
	r := sim.NewRNG(key)
	for i := 0; i < len(buf); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
}

// check reports whether buf holds key's payload.
func check(buf []byte, key uint64) bool {
	r := sim.NewRNG(key)
	for i := 0; i < len(buf); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(buf); j++ {
			if buf[i+j] != byte(v>>(8*j)) {
				return false
			}
		}
	}
	return true
}
