package pdl

// ParityPolicy selects how Build post-processes parity placement.
type ParityPolicy int

const (
	// ParityDefault keeps whatever parity placement the construction
	// method produced (ring layouts: perfectly balanced; holland-gibson:
	// rotated across copies; balanced-bibd: network-flow balanced).
	ParityDefault ParityPolicy = iota

	// ParityFlow discards any existing placement and reassigns parity with
	// the Section 4 network-flow method: every disk gets floor(L(d)) or
	// ceil(L(d)) parity units (spread at most one, Corollary 16).
	ParityFlow

	// ParityPerfect replicates the layout lcm(b, v)/b times and
	// flow-balances, guaranteeing an identical parity count on every disk
	// (Corollary 17). Result.Copies reports the replication factor.
	ParityPerfect

	// ParityNone strips parity assignments, leaving every stripe's parity
	// index -1 (useful as input to external placement schemes).
	ParityNone
)

func (p ParityPolicy) String() string {
	switch p {
	case ParityDefault:
		return "default"
	case ParityFlow:
		return "flow"
	case ParityPerfect:
		return "perfect"
	case ParityNone:
		return "none"
	default:
		return "unknown"
	}
}

// Options collects the knobs Build accepts. Registered constructors
// receive the resolved Options, so third-party methods can honor the same
// switches.
type Options struct {
	// Method pins a construction from the registry ("" = automatic
	// selection: ring for prime-power v, else stairway, else
	// balanced-bibd).
	Method string

	// ParityPolicy post-processes parity placement; see the constants.
	ParityPolicy ParityPolicy

	// Sparing additionally designates one distributed spare unit per
	// stripe (Section 5) via the Theorem 14 flow; Result.Sparing carries
	// the assignment.
	Sparing bool

	// MaxSize, when positive, bounds the layout size (units per disk);
	// Build fails with ErrInfeasible beyond it.
	MaxSize int

	// Base pins the prime-power base q for the stairway and removal
	// methods (0 = search).
	Base int

	// Rows sets the number of stripe rows for the raid5 and random
	// baselines (0 = k*(v-1), matching the ring-layout size).
	Rows int

	// Seed seeds the random baseline.
	Seed uint64

	// ParityShards, when > 1, marks each stripe as carrying that many
	// parity units (the m consecutive positions starting at the assigned
	// parity index, mod stripe size), enabling m-failure-tolerant erasure
	// codes (repro/pdl/code) over the same declustered placement. 0 and 1
	// both mean the classic single-parity layout.
	ParityShards int

	// baseSet/rowsSet/seedSet record that the option was passed
	// explicitly (even with its zero value), so Build can reject options
	// the selected built-in method would silently ignore.
	baseSet, rowsSet, seedSet bool
}

// Option mutates Options; pass them to Build.
type Option func(*Options)

// WithMethod pins a registered construction method by name (see Methods).
func WithMethod(name string) Option { return func(o *Options) { o.Method = name } }

// WithParityPolicy selects parity post-processing.
func WithParityPolicy(p ParityPolicy) Option { return func(o *Options) { o.ParityPolicy = p } }

// WithSparing requests a distributed-sparing assignment on the result.
func WithSparing() Option { return func(o *Options) { o.Sparing = true } }

// WithMaxSize bounds the layout size in units per disk; Build fails with
// ErrInfeasible when the construction exceeds it.
func WithMaxSize(units int) Option { return func(o *Options) { o.MaxSize = units } }

// WithBase pins the prime-power base q for stairway/removal constructions.
func WithBase(q int) Option {
	return func(o *Options) { o.Base, o.baseSet = q, true }
}

// WithRows sets the row count for the raid5/random baseline methods.
func WithRows(rows int) Option {
	return func(o *Options) { o.Rows, o.rowsSet = rows, true }
}

// WithSeed seeds the random baseline method.
func WithSeed(seed uint64) Option {
	return func(o *Options) { o.Seed, o.seedSet = seed, true }
}

// WithParityShards marks each stripe of the result as carrying m parity
// units instead of one, so an m-failure-tolerant erasure code (see
// repro/pdl/code) can run over the declustered placement. m must leave at
// least one data unit per stripe (m < k) and stay within the code
// limit (code.MaxParityShards). Incompatible with WithSparing and
// ParityNone, which assume the classic single-parity structure.
func WithParityShards(m int) Option {
	return func(o *Options) { o.ParityShards = m }
}
