package layout

import (
	"bytes"
	"crypto/subtle"
	"fmt"

	"repro/pdl/code"
)

// Data is an in-memory disk array with real bytes governed by a layout:
// every stripe's parity units hold the erasure-code combinations of its
// data units. It provides byte-accurate writes (read-modify-write parity
// updates, Figure 1) and failed-disk reconstruction — for a single
// failure under the classic XOR code, or up to m simultaneous failures
// when the layout carries m parity units (Reed–Solomon by default).
//
// Data is deliberately simple and single-threaded: it is the reference
// model the concurrent serving engine (repro/pdl/store) is
// property-tested against, and the correctness oracle behind the
// simulator's checks. Production byte serving belongs in pdl/store; both
// engines share the same code kernels (repro/pdl/code), so this model
// contains no duplicated parity arithmetic.
type Data struct {
	Layout   *Layout
	UnitSize int
	code     code.Code
	mapping  *Mapping
	disks    [][]byte // v slices of Size*UnitSize bytes
	coef     []byte   // reconstruction coefficient scratch
}

// NewData allocates a zeroed array for one copy of the layout, running
// the default code for the layout's parity count (XOR for single parity,
// Reed–Solomon beyond). A zeroed array trivially satisfies parity (every
// combination of zeros is zero).
func NewData(l *Layout, unitSize int) (*Data, error) {
	m := l.ParityCount()
	if m > code.MaxParityShards {
		return nil, fmt.Errorf("layout: NewData: %d parity units exceed the code limit %d", m, code.MaxParityShards)
	}
	return NewDataCode(l, unitSize, code.Default(m))
}

// NewDataCode allocates a zeroed array running an explicit erasure code,
// whose parity shard count must match the layout's.
func NewDataCode(l *Layout, unitSize int, c code.Code) (*Data, error) {
	if unitSize < 1 {
		return nil, fmt.Errorf("layout: NewData: unit size %d < 1", unitSize)
	}
	if c.ParityShards() != l.ParityCount() {
		return nil, fmt.Errorf("layout: NewData: code %q has %d parity shards, layout carries %d", c.Name(), c.ParityShards(), l.ParityCount())
	}
	m, err := NewMapping(l)
	if err != nil {
		return nil, err
	}
	maxUnits := 0
	for si := range l.Stripes {
		n := len(l.Stripes[si].Units)
		if k := n - c.ParityShards(); k > c.MaxDataShards() {
			return nil, fmt.Errorf("layout: NewData: stripe %d has %d data units, code %q takes %d", si, k, c.Name(), c.MaxDataShards())
		}
		if n > maxUnits {
			maxUnits = n
		}
	}
	d := &Data{Layout: l, UnitSize: unitSize, code: c, mapping: m, disks: make([][]byte, l.V), coef: make([]byte, maxUnits)}
	for i := range d.disks {
		d.disks[i] = make([]byte, l.Size*unitSize)
	}
	return d, nil
}

// Mapping returns the address mapping.
func (d *Data) Mapping() *Mapping { return d.mapping }

// Code returns the erasure code governing the parity bytes.
func (d *Data) Code() code.Code { return d.code }

// unit returns the byte slice backing a physical unit.
func (d *Data) unit(u Unit) []byte {
	return d.disks[u.Disk][u.Offset*d.UnitSize : (u.Offset+1)*d.UnitSize]
}

// ReadLogical returns a copy of the payload of a logical data unit.
func (d *Data) ReadLogical(logical int) ([]byte, error) {
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), d.unit(u)...), nil
}

// WriteLogical writes a payload to a logical data unit, updating each of
// the stripe's parity units with the standard small-write
// read-modify-write: parity absorbs the coefficient-weighted delta
// old data ^ new data. Under XOR that is exactly parity ^= old ^ new —
// 2 reads and 2 writes, the cost model the simulator charges.
func (d *Data) WriteLogical(logical int, payload []byte) error {
	if len(payload) != d.UnitSize {
		return fmt.Errorf("layout: WriteLogical: payload %d bytes, want %d", len(payload), d.UnitSize)
	}
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return err
	}
	si := d.mapping.StripeAt(u)
	s := &d.Layout.Stripes[si]
	if s.Parity < 0 {
		return fmt.Errorf("layout: WriteLogical: stripe has no assigned parity")
	}
	shard := d.mapping.ShardIndex(u.Disk, u.Offset)
	old := d.unit(u)
	delta := make([]byte, d.UnitSize)
	subtle.XORBytes(delta, old, payload)
	for j := 0; j < d.code.ParityShards(); j++ {
		d.code.UpdateParity(j, shard, d.unit(d.mapping.ParityUnitAt(si, j)), delta)
	}
	copy(old, payload)
	return nil
}

// stripeData appends the data-unit payloads of stripe si in shard order.
func (d *Data) stripeData(dst [][]byte, si int) [][]byte {
	for _, u := range d.mapping.StripeUnits(si) {
		if d.mapping.ShardIndex(u.Disk, u.Offset) < d.mapping.DataShards(si) {
			dst = append(dst, d.unit(u))
		}
	}
	return dst
}

// VerifyParity checks every stripe's parity invariant: each parity unit
// equals its code combination of the stripe's data units.
func (d *Data) VerifyParity() error {
	buf := make([]byte, d.UnitSize)
	var data [][]byte
	for si := range d.Layout.Stripes {
		data = d.stripeData(data[:0], si)
		for j := 0; j < d.code.ParityShards(); j++ {
			d.code.EncodeParity(j, data, buf)
			if !bytes.Equal(buf, d.unit(d.mapping.ParityUnitAt(si, j))) {
				return fmt.Errorf("layout: stripe %d parity %d mismatch", si, j)
			}
		}
	}
	return nil
}

// reconstructUnit recomputes the payload of unit u into out while the
// disks in down (which include u.Disk) are unavailable, via the code's
// survivor combination over the stripe.
func (d *Data) reconstructUnit(u Unit, down []int, out []byte) error {
	si := d.mapping.StripeAt(u)
	k := d.mapping.DataShards(si)
	units := d.mapping.StripeUnits(si)
	// Collect the stripe's missing shards, sorted (shards of units on down
	// disks; sorting by shard, not position, per the code contract).
	missing := missingShards(d.mapping, units, down)
	target := d.mapping.ShardIndex(u.Disk, u.Offset)
	if err := d.code.PlanReconstruct(k, missing, target, d.coef); err != nil {
		return fmt.Errorf("layout: stripe %d: %w", si, err)
	}
	clear(out)
	for _, su := range units {
		if w := d.coef[d.mapping.ShardIndex(su.Disk, su.Offset)]; w != 0 {
			code.MulAdd(out, d.unit(su), w)
		}
	}
	return nil
}

// missingShards returns the sorted shard indices of units lying on the
// given disks.
func missingShards(m *Mapping, units []Unit, down []int) []int {
	var missing []int
	for _, su := range units {
		for _, f := range down {
			if su.Disk == f {
				missing = append(missing, m.ShardIndex(su.Disk, su.Offset))
				break
			}
		}
	}
	for i := 1; i < len(missing); i++ {
		for j := i; j > 0 && missing[j-1] > missing[j]; j-- {
			missing[j-1], missing[j] = missing[j], missing[j-1]
		}
	}
	return missing
}

// ReconstructDisk recomputes the contents of one disk from the survivors,
// stripe by stripe, returning the rebuilt bytes; any additional disks in
// alsoDown are treated as unavailable too (the multi-failure case — the
// total failure count must stay within the code's parity shards). It does
// not modify the array, so tests can compare against the "failed" disk's
// actual contents.
func (d *Data) ReconstructDisk(failed int, alsoDown ...int) ([]byte, error) {
	down := append([]int{failed}, alsoDown...)
	for _, f := range down {
		if f < 0 || f >= d.Layout.V {
			return nil, fmt.Errorf("layout: ReconstructDisk(%d): disk out of range", f)
		}
	}
	rebuilt := make([]byte, d.Layout.Size*d.UnitSize)
	covered := make([]bool, d.Layout.Size)
	for si := range d.Layout.Stripes {
		s := &d.Layout.Stripes[si]
		var target Unit
		found := false
		for _, u := range s.Units {
			if u.Disk == failed {
				target = u
				found = true
				break
			}
		}
		if !found {
			continue
		}
		out := rebuilt[target.Offset*d.UnitSize : (target.Offset+1)*d.UnitSize]
		if err := d.reconstructUnit(target, down, out); err != nil {
			return nil, err
		}
		covered[target.Offset] = true
	}
	for off, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("layout: ReconstructDisk(%d): offset %d not covered by any stripe", failed, off)
		}
	}
	return rebuilt, nil
}

// DegradedRead returns the payload of a logical data unit while the given
// disks are down: a direct read when the unit survives, otherwise an
// on-the-fly survivor reconstruction over the stripe.
func (d *Data) DegradedRead(logical int, failed ...int) ([]byte, error) {
	for _, f := range failed {
		if f < 0 || f >= d.Layout.V {
			return nil, fmt.Errorf("layout: DegradedRead: failed disk %d out of range", f)
		}
	}
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return nil, err
	}
	down := false
	for _, f := range failed {
		if u.Disk == f {
			down = true
			break
		}
	}
	if !down {
		return append([]byte(nil), d.unit(u)...), nil
	}
	out := make([]byte, d.UnitSize)
	if err := d.reconstructUnit(u, failed, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DiskContents returns a copy of a disk's raw bytes.
func (d *Data) DiskContents(disk int) []byte {
	return append([]byte(nil), d.disks[disk]...)
}

// CheckReconstruction fails with an error if reconstructing each disk does
// not reproduce its actual contents (Condition 1 end-to-end). When the
// layout carries two or more parity units, every disk PAIR is checked
// too — the two-failure tolerance the multi-parity codes exist for.
func (d *Data) CheckReconstruction() error {
	for f := 0; f < d.Layout.V; f++ {
		rebuilt, err := d.ReconstructDisk(f)
		if err != nil {
			return err
		}
		if !bytes.Equal(rebuilt, d.disks[f]) {
			return fmt.Errorf("layout: disk %d reconstruction mismatch", f)
		}
	}
	if d.code.ParityShards() < 2 {
		return nil
	}
	for f := 0; f < d.Layout.V; f++ {
		for g := 0; g < d.Layout.V; g++ {
			if g == f {
				continue
			}
			rebuilt, err := d.ReconstructDisk(f, g)
			if err != nil {
				return err
			}
			if !bytes.Equal(rebuilt, d.disks[f]) {
				return fmt.Errorf("layout: disk %d reconstruction mismatch with disk %d also down", f, g)
			}
		}
	}
	return nil
}
