package layout

import (
	"bytes"
	"crypto/subtle"
	"fmt"
)

// Data is an in-memory disk array with real bytes governed by a layout:
// every stripe's parity unit holds the XOR of its data units. It provides
// byte-accurate writes (read-modify-write parity updates, Figure 1) and
// failed-disk reconstruction.
//
// Data is deliberately simple and single-threaded: it is the reference
// model the concurrent serving engine (repro/pdl/store) is
// property-tested against, and the correctness oracle behind the
// simulator's checks. Production byte serving belongs in pdl/store; both
// engines share the same XOR kernel (crypto/subtle.XORBytes), so this
// model contains no duplicated parity arithmetic.
type Data struct {
	Layout   *Layout
	UnitSize int
	mapping  *Mapping
	disks    [][]byte // v slices of Size*UnitSize bytes
}

// NewData allocates a zeroed array for one copy of the layout. A zeroed
// array trivially satisfies parity (XOR of zeros is zero).
func NewData(l *Layout, unitSize int) (*Data, error) {
	if unitSize < 1 {
		return nil, fmt.Errorf("layout: NewData: unit size %d < 1", unitSize)
	}
	m, err := NewMapping(l)
	if err != nil {
		return nil, err
	}
	d := &Data{Layout: l, UnitSize: unitSize, mapping: m, disks: make([][]byte, l.V)}
	for i := range d.disks {
		d.disks[i] = make([]byte, l.Size*unitSize)
	}
	return d, nil
}

// Mapping returns the address mapping.
func (d *Data) Mapping() *Mapping { return d.mapping }

// unit returns the byte slice backing a physical unit.
func (d *Data) unit(u Unit) []byte {
	return d.disks[u.Disk][u.Offset*d.UnitSize : (u.Offset+1)*d.UnitSize]
}

// ReadLogical returns a copy of the payload of a logical data unit.
func (d *Data) ReadLogical(logical int) ([]byte, error) {
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), d.unit(u)...), nil
}

// WriteLogical writes a payload to a logical data unit, updating the
// stripe's parity with the standard small-write read-modify-write: parity
// ^= old data ^ new data. That is 2 reads and 2 writes, the cost model the
// simulator charges.
func (d *Data) WriteLogical(logical int, payload []byte) error {
	if len(payload) != d.UnitSize {
		return fmt.Errorf("layout: WriteLogical: payload %d bytes, want %d", len(payload), d.UnitSize)
	}
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return err
	}
	s := &d.Layout.Stripes[d.mapping.StripeAt(u)]
	pu, ok := s.ParityUnit()
	if !ok {
		return fmt.Errorf("layout: WriteLogical: stripe has no assigned parity")
	}
	old := d.unit(u)
	par := d.unit(pu)
	subtle.XORBytes(par, par, old)
	subtle.XORBytes(par, par, payload)
	copy(old, payload)
	return nil
}

// VerifyParity checks every stripe's XOR invariant.
func (d *Data) VerifyParity() error {
	buf := make([]byte, d.UnitSize)
	for si := range d.Layout.Stripes {
		s := &d.Layout.Stripes[si]
		clear(buf)
		for _, u := range s.Units {
			subtle.XORBytes(buf, buf, d.unit(u))
		}
		for _, x := range buf {
			if x != 0 {
				return fmt.Errorf("layout: stripe %d parity mismatch", si)
			}
		}
	}
	return nil
}

// ReconstructDisk recomputes the contents of one disk from the survivors,
// stripe by stripe, returning the rebuilt bytes. It does not modify the
// array, so tests can compare against the "failed" disk's actual contents.
func (d *Data) ReconstructDisk(failed int) ([]byte, error) {
	if failed < 0 || failed >= d.Layout.V {
		return nil, fmt.Errorf("layout: ReconstructDisk(%d): disk out of range", failed)
	}
	rebuilt := make([]byte, d.Layout.Size*d.UnitSize)
	covered := make([]bool, d.Layout.Size)
	for si := range d.Layout.Stripes {
		s := &d.Layout.Stripes[si]
		var target Unit
		found := false
		for _, u := range s.Units {
			if u.Disk == failed {
				target = u
				found = true
				break
			}
		}
		if !found {
			continue
		}
		out := rebuilt[target.Offset*d.UnitSize : (target.Offset+1)*d.UnitSize]
		for _, u := range s.Units {
			if u.Disk == failed {
				continue
			}
			subtle.XORBytes(out, out, d.unit(u))
		}
		covered[target.Offset] = true
	}
	for off, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("layout: ReconstructDisk(%d): offset %d not covered by any stripe", failed, off)
		}
	}
	return rebuilt, nil
}

// DegradedRead returns the payload of a logical data unit while disk
// `failed` is down: a direct read when the unit survives, otherwise an
// on-the-fly XOR of the stripe's surviving units.
func (d *Data) DegradedRead(logical, failed int) ([]byte, error) {
	if failed < 0 || failed >= d.Layout.V {
		return nil, fmt.Errorf("layout: DegradedRead: failed disk %d out of range", failed)
	}
	u, err := d.mapping.Map(logical, d.Layout.Size)
	if err != nil {
		return nil, err
	}
	if u.Disk != failed {
		return append([]byte(nil), d.unit(u)...), nil
	}
	s := &d.Layout.Stripes[d.mapping.StripeAt(u)]
	out := make([]byte, d.UnitSize)
	for _, su := range s.Units {
		if su.Disk == failed {
			continue
		}
		subtle.XORBytes(out, out, d.unit(su))
	}
	return out, nil
}

// DiskContents returns a copy of a disk's raw bytes.
func (d *Data) DiskContents(disk int) []byte {
	return append([]byte(nil), d.disks[disk]...)
}

// CheckReconstruction fails with an error if reconstructing each disk does
// not reproduce its actual contents (Condition 1 end-to-end).
func (d *Data) CheckReconstruction() error {
	for f := 0; f < d.Layout.V; f++ {
		rebuilt, err := d.ReconstructDisk(f)
		if err != nil {
			return err
		}
		if !bytes.Equal(rebuilt, d.disks[f]) {
			return fmt.Errorf("layout: disk %d reconstruction mismatch", f)
		}
	}
	return nil
}
