package layout

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONVersion is the current version of the layout interchange schema.
// Version history:
//
//	0 (implicit): the pre-1.0 schema without a version field
//	1: identical payload plus an explicit "version" field
//	2: adds "parity_units" (parity units per stripe, multi-parity layouts)
//
// ReadJSON accepts any version up to JSONVersion and rejects newer ones,
// so layouts serialized by older releases keep loading — and WriteJSON
// emits the oldest version that can represent the layout (single-parity
// layouts still serialize at version 1, byte-identical to older
// releases, so files round-tripped through this build stay readable by
// old builds).
const JSONVersion = 2

// jsonLayout is the stable JSON interchange schema used by the CLI tools:
// stripes are lists of [disk, offset] pairs plus a parity index.
type jsonLayout struct {
	Version     int          `json:"version,omitempty"`
	V           int          `json:"v"`
	Size        int          `json:"size"`
	ParityUnits int          `json:"parity_units,omitempty"`
	Stripes     []jsonStripe `json:"stripes"`
}

type jsonStripe struct {
	Units  [][2]int `json:"units"`
	Parity int      `json:"parity"`
}

// WriteJSON serializes the layout at the oldest schema version that
// represents it: version 1 for single-parity layouts, version 2 when the
// stripe carries more than one parity unit.
func (l *Layout) WriteJSON(w io.Writer) error {
	jl := jsonLayout{Version: 1, V: l.V, Size: l.Size, Stripes: make([]jsonStripe, len(l.Stripes))}
	if l.ParityCount() > 1 {
		jl.Version = JSONVersion
		jl.ParityUnits = l.ParityUnits
	}
	for i, s := range l.Stripes {
		units := make([][2]int, len(s.Units))
		for j, u := range s.Units {
			units[j] = [2]int{u.Disk, u.Offset}
		}
		jl.Stripes[i] = jsonStripe{Units: units, Parity: s.Parity}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jl)
}

// ReadJSON deserializes a layout and validates it structurally. Layouts
// written by any schema version up to JSONVersion are accepted; newer
// versions are rejected with a descriptive error.
func ReadJSON(r io.Reader) (*Layout, error) {
	var jl jsonLayout
	if err := json.NewDecoder(r).Decode(&jl); err != nil {
		return nil, fmt.Errorf("layout: ReadJSON: %w", err)
	}
	if jl.Version < 0 || jl.Version > JSONVersion {
		return nil, fmt.Errorf("layout: ReadJSON: unsupported schema version %d (this build reads up to %d)", jl.Version, JSONVersion)
	}
	if jl.ParityUnits < 0 || (jl.Version < 2 && jl.ParityUnits > 1) {
		return nil, fmt.Errorf("layout: ReadJSON: parity_units %d invalid at schema version %d", jl.ParityUnits, jl.Version)
	}
	l := &Layout{V: jl.V, Size: jl.Size, ParityUnits: jl.ParityUnits, Stripes: make([]Stripe, len(jl.Stripes))}
	for i, s := range jl.Stripes {
		units := make([]Unit, len(s.Units))
		for j, u := range s.Units {
			units[j] = Unit{Disk: u[0], Offset: u[1]}
		}
		l.Stripes[i] = Stripe{Units: units, Parity: s.Parity}
	}
	if err := l.Check(); err != nil {
		return nil, fmt.Errorf("layout: ReadJSON: invalid layout: %w", err)
	}
	return l, nil
}
