package layout

import (
	"testing"

	"repro/internal/design"
)

func fano() *design.Design {
	return design.FromDifferenceSet(7, []int{1, 2, 4})
}

func TestAssembleSimple(t *testing.T) {
	// v=4, stripes covering each disk twice.
	l, err := Assemble(4, [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 3 {
		t.Errorf("size = %d, want 3", l.Size)
	}
	if err := l.Check(); err != nil {
		t.Error(err)
	}
}

func TestAssembleRejectsDuplicateDisk(t *testing.T) {
	if _, err := Assemble(4, [][]int{{0, 0, 1}}); err == nil {
		t.Error("duplicate disk accepted")
	}
}

func TestAssembleRejectsUneven(t *testing.T) {
	if _, err := Assemble(3, [][]int{{0, 1}}); err == nil {
		t.Error("uneven layout accepted")
	}
}

func TestAssembleRejectsOutOfRange(t *testing.T) {
	if _, err := Assemble(3, [][]int{{0, 5}}); err == nil {
		t.Error("out-of-range disk accepted")
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	l := &Layout{V: 2, Size: 1, Stripes: []Stripe{
		{Units: []Unit{{0, 0}, {1, 0}}, Parity: 0},
		{Units: []Unit{{0, 0}}, Parity: 0},
	}}
	if l.Check() == nil {
		t.Error("overlapping units accepted")
	}
}

func TestCheckDetectsGap(t *testing.T) {
	l := &Layout{V: 2, Size: 2, Stripes: []Stripe{
		{Units: []Unit{{0, 0}, {1, 0}}, Parity: 0},
	}}
	if l.Check() == nil {
		t.Error("uncovered units accepted")
	}
}

func TestCheckDetectsBadParityIndex(t *testing.T) {
	l := &Layout{V: 2, Size: 1, Stripes: []Stripe{
		{Units: []Unit{{0, 0}, {1, 0}}, Parity: 5},
	}}
	if l.Check() == nil {
		t.Error("bad parity index accepted")
	}
}

func TestFromDesignHGFano(t *testing.T) {
	l, err := fromDesignHG(fano())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	// Size = k*r = 3*3 = 9.
	if l.Size != 9 {
		t.Errorf("size = %d, want 9", l.Size)
	}
	if !l.ParityAssigned() {
		t.Error("parity not assigned")
	}
	// Parity overhead exactly 1/k on every disk.
	min, max := l.ParityOverheadRange()
	if !min.Equal(R(1, 3)) || !max.Equal(R(1, 3)) {
		t.Errorf("parity overhead [%v, %v], want exactly 1/3", min, max)
	}
	// Reconstruction workload exactly (k-1)/(v-1) = 2/6 = 1/3.
	wmin, wmax := l.ReconstructionWorkloadRange()
	if !wmin.Equal(R(1, 3)) || !wmax.Equal(R(1, 3)) {
		t.Errorf("workload [%v, %v], want exactly 1/3", wmin, wmax)
	}
}

func TestFromDesignHGBalancedForAllCatalog(t *testing.T) {
	for _, c := range []struct{ v, k int }{{7, 3}, {9, 3}, {13, 4}, {6, 3}} {
		d := design.Known(c.v, c.k)
		if d == nil {
			t.Fatalf("no known design (%d,%d)", c.v, c.k)
		}
		l, err := fromDesignHG(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if !l.ParityPerfectlyBalanced() {
			t.Errorf("(%d,%d): HG parity not perfectly balanced", c.v, c.k)
		}
		if !l.WorkloadPerfectlyBalanced() {
			t.Errorf("(%d,%d): HG workload not perfectly balanced", c.v, c.k)
		}
	}
}

func TestFromDesignSingleSize(t *testing.T) {
	d := fano()
	l, err := fromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 3 { // r = 3: k times smaller than HG
		t.Errorf("single-copy size = %d, want 3", l.Size)
	}
	if l.ParityAssigned() {
		t.Error("single-copy layout should have unassigned parity")
	}
}

func TestStripeSizes(t *testing.T) {
	l, err := Assemble(4, [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	min, max := l.StripeSizes()
	if min != 3 || max != 3 {
		t.Errorf("stripe sizes [%d,%d], want [3,3]", min, max)
	}
}

func TestCopies(t *testing.T) {
	l, err := fromDesignHG(fano())
	if err != nil {
		t.Fatal(err)
	}
	c := Copies(l, 3)
	if c.Size != 27 {
		t.Errorf("size = %d, want 27", c.Size)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if len(c.Stripes) != 3*len(l.Stripes) {
		t.Errorf("stripes = %d, want %d", len(c.Stripes), 3*len(l.Stripes))
	}
	// Balance metrics are preserved under replication.
	if got, want := c.MaxParityOverhead(), l.MaxParityOverhead(); !got.Equal(want) {
		t.Errorf("parity overhead %v, want %v", got, want)
	}
	if got, want := c.MaxReconstructionWorkload(), l.MaxReconstructionWorkload(); !got.Equal(want) {
		t.Errorf("workload %v, want %v", got, want)
	}
}

func TestFeasible(t *testing.T) {
	l := &Layout{V: 2, Size: FeasibleTableSize}
	if !l.Feasible() {
		t.Error("size == bound should be feasible")
	}
	l.Size++
	if l.Feasible() {
		t.Error("size above bound should be infeasible")
	}
}

func TestCloneIndependence(t *testing.T) {
	l, _ := fromDesignHG(fano())
	c := l.Clone()
	c.Stripes[0].Units[0].Disk = 99
	c.Stripes[0].Parity = -1
	if l.Stripes[0].Units[0].Disk == 99 || l.Stripes[0].Parity == -1 {
		t.Error("Clone shares storage")
	}
}

func TestParityUnitUnassigned(t *testing.T) {
	s := Stripe{Units: []Unit{{0, 0}}, Parity: -1}
	if _, ok := s.ParityUnit(); ok {
		t.Error("unassigned parity reported ok")
	}
	s.Parity = 0
	if u, ok := s.ParityUnit(); !ok || u != (Unit{0, 0}) {
		t.Errorf("assigned parity: got %v, %v", u, ok)
	}
	s.Parity = 5
	if _, ok := s.ParityUnit(); ok {
		t.Error("out-of-range parity index reported ok")
	}
}
