package layout

import "fmt"

// Ratio is an exact nonnegative rational, used for parity-overhead and
// reconstruction-workload metrics so theorem bounds can be compared without
// floating-point tolerance.
type Ratio struct {
	Num, Den int
}

// R returns the normalized ratio num/den (den > 0 required).
func R(num, den int) Ratio {
	if den <= 0 {
		panic(fmt.Sprintf("layout: R(%d,%d): denominator must be positive", num, den))
	}
	if num < 0 {
		panic(fmt.Sprintf("layout: R(%d,%d): negative ratio", num, den))
	}
	g := gcd(num, den)
	if g == 0 {
		return Ratio{0, 1}
	}
	return Ratio{num / g, den / g}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// Cmp returns -1, 0, or +1 as r is less than, equal to, or greater than s.
func (r Ratio) Cmp(s Ratio) int {
	lhs := r.Num * s.Den
	rhs := s.Num * r.Den
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// LessEq reports r <= s.
func (r Ratio) LessEq(s Ratio) bool { return r.Cmp(s) <= 0 }

// Equal reports r == s.
func (r Ratio) Equal(s Ratio) bool { return r.Cmp(s) == 0 }

// Float returns the float64 value.
func (r Ratio) Float() float64 { return float64(r.Num) / float64(r.Den) }

// String formats as "num/den".
func (r Ratio) String() string { return fmt.Sprintf("%d/%d", r.Num, r.Den) }
