// Package layout implements parity-declustered data layouts: the division
// of a disk array's units into parity stripes, parity placement, the four
// Holland–Gibson layout conditions the paper evaluates (reconstructability,
// parity balance, reconstruction-workload balance, mapping efficiency), the
// Holland–Gibson k-copy construction from block-design tuples, logical
// address mapping, and an XOR parity engine for byte-accurate
// reconstruction.
//
// This package is part of the public API (see repro/pdl); it depends on
// nothing under internal/.
package layout

import "fmt"

// FeasibleTableSize is the paper's Condition 4 feasibility bound: a layout
// is considered feasible if its per-disk size (which equals the lookup
// table height) is at most 10,000 tracks.
const FeasibleTableSize = 10000

// Unit addresses one stripe unit: a (disk, offset) position in the array.
type Unit struct {
	Disk, Offset int
}

// Stripe is one parity stripe: a set of units on distinct disks, some of
// which hold parity. Parity is the index of the first parity unit into
// Units, or -1 while unassigned; when the layout carries m parity units
// per stripe (Layout.ParityCount), the parity units occupy the m
// consecutive positions (Parity, Parity+1, ..., Parity+m-1) mod
// len(Units) — so for the classic single-parity case, Parity is the one
// parity unit, exactly as before multi-parity existed.
type Stripe struct {
	Units  []Unit
	Parity int
}

// ParityUnit returns the parity unit, with ok=false when parity is
// unassigned (Parity < 0) or the index is out of range.
func (s *Stripe) ParityUnit() (Unit, bool) {
	if s.Parity < 0 || s.Parity >= len(s.Units) {
		return Unit{}, false
	}
	return s.Units[s.Parity], true
}

// Layout is a parity-declustered data layout: V disks of Size units each,
// partitioned into Stripes. The paper calls Size the size of the layout;
// it equals the height of the Condition 4 lookup table. ParityUnits is
// the number of parity units each stripe carries; the zero value means 1,
// so every layout built before erasure codes were pluggable keeps its
// meaning.
type Layout struct {
	V           int
	Size        int
	ParityUnits int
	Stripes     []Stripe
}

// ParityCount returns the number of parity units per stripe (m >= 1): the
// redundancy the array's erasure code must provide. The zero value of
// ParityUnits reads as 1.
func (l *Layout) ParityCount() int {
	if l.ParityUnits <= 0 {
		return 1
	}
	return l.ParityUnits
}

// IsParityPos reports whether position ui of stripe s holds parity under
// this layout's parity count: one of the m consecutive positions (mod
// stripe size) starting at s.Parity. False while parity is unassigned.
func (l *Layout) IsParityPos(s *Stripe, ui int) bool {
	if s.Parity < 0 {
		return false
	}
	d := ui - s.Parity
	if d < 0 {
		d += len(s.Units)
	}
	return d < l.ParityCount()
}

// ParityPos returns the position (index into s.Units) of stripe s's j-th
// parity unit, j in [0, ParityCount()).
func (l *Layout) ParityPos(s *Stripe, j int) int {
	return (s.Parity + j) % len(s.Units)
}

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	out := &Layout{V: l.V, Size: l.Size, ParityUnits: l.ParityUnits, Stripes: make([]Stripe, len(l.Stripes))}
	for i, s := range l.Stripes {
		out.Stripes[i] = Stripe{Units: append([]Unit(nil), s.Units...), Parity: s.Parity}
	}
	return out
}

// Assemble builds a layout from per-stripe disk lists: stripe i occupies
// one unit on each disk in stripeDisks[i], at the next free offset of that
// disk. Every disk must end with the same number of units (the layout
// size); parity is left unassigned. This is the generic entry point used
// by the BIBD-based and ring-based constructions.
func Assemble(v int, stripeDisks [][]int) (*Layout, error) {
	if v < 2 {
		return nil, fmt.Errorf("layout: v = %d < 2", v)
	}
	next := make([]int, v)
	l := &Layout{V: v, Stripes: make([]Stripe, len(stripeDisks))}
	for i, disks := range stripeDisks {
		seen := make(map[int]bool, len(disks))
		units := make([]Unit, len(disks))
		for j, d := range disks {
			if d < 0 || d >= v {
				return nil, fmt.Errorf("layout: stripe %d: disk %d out of range", i, d)
			}
			if seen[d] {
				return nil, fmt.Errorf("layout: stripe %d: disk %d appears twice (violates Condition 1)", i, d)
			}
			seen[d] = true
			units[j] = Unit{Disk: d, Offset: next[d]}
			next[d]++
		}
		l.Stripes[i] = Stripe{Units: units, Parity: -1}
	}
	size := next[0]
	for d := 1; d < v; d++ {
		if next[d] != size {
			return nil, fmt.Errorf("layout: disk %d has %d units, disk 0 has %d (uneven layout)", d, next[d], size)
		}
	}
	l.Size = size
	return l, nil
}

// Check validates structural invariants:
//   - every stripe holds at most one unit per disk (Condition 1),
//   - unit offsets lie in [0, Size),
//   - the stripes exactly partition the V x Size unit grid,
//   - parity indices are valid or -1.
func (l *Layout) Check() error {
	if l.V < 2 {
		return fmt.Errorf("layout: v = %d < 2", l.V)
	}
	if l.ParityUnits < 0 {
		return fmt.Errorf("layout: parity units %d < 0", l.ParityUnits)
	}
	covered := make([]bool, l.V*l.Size)
	for i, s := range l.Stripes {
		if len(s.Units) == 0 {
			return fmt.Errorf("layout: stripe %d empty", i)
		}
		if s.Parity < -1 || s.Parity >= len(s.Units) {
			return fmt.Errorf("layout: stripe %d parity index %d invalid", i, s.Parity)
		}
		if l.ParityCount() > 1 && s.Parity >= 0 && len(s.Units) <= l.ParityCount() {
			return fmt.Errorf("layout: stripe %d has %d units, need more than %d parity units", i, len(s.Units), l.ParityCount())
		}
		seen := make(map[int]bool, len(s.Units))
		for _, u := range s.Units {
			if u.Disk < 0 || u.Disk >= l.V {
				return fmt.Errorf("layout: stripe %d: disk %d out of range", i, u.Disk)
			}
			if u.Offset < 0 || u.Offset >= l.Size {
				return fmt.Errorf("layout: stripe %d: offset %d out of range [0,%d)", i, u.Offset, l.Size)
			}
			if seen[u.Disk] {
				return fmt.Errorf("layout: stripe %d: two units on disk %d (violates Condition 1)", i, u.Disk)
			}
			seen[u.Disk] = true
			idx := u.Disk*l.Size + u.Offset
			if covered[idx] {
				return fmt.Errorf("layout: unit (disk %d, offset %d) in two stripes", u.Disk, u.Offset)
			}
			covered[idx] = true
		}
	}
	for idx, ok := range covered {
		if !ok {
			return fmt.Errorf("layout: unit (disk %d, offset %d) not in any stripe", idx/l.Size, idx%l.Size)
		}
	}
	return nil
}

// ParityAssigned reports whether every stripe has a parity unit.
func (l *Layout) ParityAssigned() bool {
	for i := range l.Stripes {
		if l.Stripes[i].Parity < 0 {
			return false
		}
	}
	return true
}

// StripeSizes returns the minimum and maximum stripe sizes.
func (l *Layout) StripeSizes() (min, max int) {
	if len(l.Stripes) == 0 {
		return 0, 0
	}
	min, max = len(l.Stripes[0].Units), len(l.Stripes[0].Units)
	for i := range l.Stripes {
		n := len(l.Stripes[i].Units)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// Feasible reports the paper's Condition 4 feasibility: layout size at most
// FeasibleTableSize.
func (l *Layout) Feasible() bool { return l.Size <= FeasibleTableSize }

// FromTuplesHG builds a data layout from block-design tuples by the
// Holland–Gibson method (Section 1, Figure 3): the tuple set is replicated
// k times, and in copy c the parity unit of every stripe is the unit at
// tuple position c. Every tuple must have exactly k elements. For a BIBD
// the layout has size k*r and parity overhead exactly 1/k on every disk.
// Only structural invariants are checked here; balance guarantees require
// the tuples to form a BIBD (use pdl.Build with the "holland-gibson"
// method for cataloged designs, or Check the result's conditions).
func FromTuplesHG(v, k int, tuples [][]int) (*Layout, error) {
	if k < 1 {
		return nil, fmt.Errorf("layout: FromTuplesHG: k = %d < 1", k)
	}
	for i, tuple := range tuples {
		if len(tuple) != k {
			return nil, fmt.Errorf("layout: FromTuplesHG: tuple %d has %d elements, want k = %d", i, len(tuple), k)
		}
	}
	stripeDisks := make([][]int, 0, k*len(tuples))
	for c := 0; c < k; c++ {
		stripeDisks = append(stripeDisks, tuples...)
	}
	l, err := Assemble(v, stripeDisks)
	if err != nil {
		return nil, err
	}
	for c := 0; c < k; c++ {
		for t := range tuples {
			l.Stripes[c*len(tuples)+t].Parity = c
		}
	}
	return l, nil
}

// Copies returns a layout consisting of n vertical copies of l stacked on
// each disk, preserving parity assignments. Used for lcm-replication
// (Corollary 17) and the stairway transformation's input.
func Copies(l *Layout, n int) *Layout {
	if n < 1 {
		panic(fmt.Sprintf("layout: Copies(%d): need n >= 1", n))
	}
	out := &Layout{V: l.V, Size: l.Size * n, ParityUnits: l.ParityUnits}
	for c := 0; c < n; c++ {
		base := c * l.Size
		for _, s := range l.Stripes {
			units := make([]Unit, len(s.Units))
			for i, u := range s.Units {
				units[i] = Unit{Disk: u.Disk, Offset: u.Offset + base}
			}
			out.Stripes = append(out.Stripes, Stripe{Units: units, Parity: s.Parity})
		}
	}
	return out
}
