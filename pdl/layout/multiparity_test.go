package layout

import (
	"bytes"
	"testing"
)

// fano2 returns the Fano-plane layout carrying two parity units per
// stripe (each stripe: 1 data + 2 parity units).
func fano2(t *testing.T) *Layout {
	t.Helper()
	l := hgFanoLayout(t)
	l.ParityUnits = 2
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMultiParityAccessors(t *testing.T) {
	l := fano2(t)
	if l.ParityCount() != 2 {
		t.Fatalf("ParityCount() = %d, want 2", l.ParityCount())
	}
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParityShards() != 2 {
		t.Fatalf("ParityShards() = %d, want 2", m.ParityShards())
	}
	for si := range l.Stripes {
		s := &l.Stripes[si]
		k := m.DataShards(si)
		if k != len(s.Units)-2 {
			t.Fatalf("stripe %d: DataShards = %d, want %d", si, k, len(s.Units)-2)
		}
		// Every unit's shard index: data units 0..k-1 in stripe-position
		// order, parity unit j at k+j; positions and shard indexes must
		// agree with IsParityPos/ParityPos.
		seen := make(map[int]bool)
		for ui, u := range s.Units {
			sh := m.ShardIndex(u.Disk, u.Offset)
			if sh < 0 || sh >= len(s.Units) || seen[sh] {
				t.Fatalf("stripe %d unit %d: shard %d invalid or duplicate", si, ui, sh)
			}
			seen[sh] = true
			if l.IsParityPos(s, ui) != (sh >= k) {
				t.Fatalf("stripe %d unit %d: IsParityPos=%v but shard=%d (k=%d)", si, ui, l.IsParityPos(s, ui), sh, k)
			}
		}
		for j := 0; j < 2; j++ {
			pu := m.ParityUnitAt(si, j)
			if got := m.ShardIndex(pu.Disk, pu.Offset); got != k+j {
				t.Fatalf("stripe %d parity %d: shard %d, want %d", si, j, got, k+j)
			}
			if s.Units[l.ParityPos(s, j)] != pu {
				t.Fatalf("stripe %d: ParityPos(%d) disagrees with ParityUnitAt", si, j)
			}
		}
	}
}

// TestMultiParityDataReconstruction is the layout-level two-failure pin:
// the Data engine over a two-parity Fano layout must reconstruct every
// single disk and every ordered disk pair (CheckReconstruction), and
// serve degraded reads under every failed pair.
func TestMultiParityDataReconstruction(t *testing.T) {
	const unitSize = 16
	l := fano2(t)
	d, err := NewData(l, unitSize)
	if err != nil {
		t.Fatal(err)
	}
	if d.Code().Name() != "rs" || d.Code().ParityShards() != 2 {
		t.Fatalf("Data runs %s/%d, want rs/2", d.Code().Name(), d.Code().ParityShards())
	}
	n := d.Mapping().DataUnits()
	for i := 0; i < n; i++ {
		payload := make([]byte, unitSize)
		for j := range payload {
			payload[j] = byte(i*13 + j*7 + 3)
		}
		if err := d.WriteLogical(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
	for f1 := 0; f1 < l.V; f1++ {
		for f2 := 0; f2 < l.V; f2++ {
			if f1 == f2 {
				continue
			}
			for i := 0; i < n; i++ {
				direct, err := d.ReadLogical(i)
				if err != nil {
					t.Fatal(err)
				}
				degraded, err := d.DegradedRead(i, f1, f2)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(direct, degraded) {
					t.Fatalf("failed=(%d,%d) logical=%d: degraded read mismatch", f1, f2, i)
				}
			}
		}
	}
	// Losing all three disks of a unit's own stripe exceeds the code:
	// DegradedRead must error, not fabricate bytes.
	u, err := d.Mapping().Map(0, l.Size)
	if err != nil {
		t.Fatal(err)
	}
	s := &l.Stripes[d.Mapping().StripeAt(u)]
	var down []int
	for _, su := range s.Units {
		down = append(down, su.Disk)
	}
	if _, err := d.DegradedRead(0, down...); err == nil {
		t.Errorf("DegradedRead with whole stripe %v down accepted on a two-parity code", down)
	}
}

func TestMultiParityJSONRoundTrip(t *testing.T) {
	l := fano2(t)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	if !bytes.Contains(enc, []byte(`"version": 2`)) || !bytes.Contains(enc, []byte(`"parity_units": 2`)) {
		t.Fatalf("multi-parity layout JSON:\n%s", enc)
	}
	back, err := ReadJSON(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if back.ParityCount() != 2 {
		t.Fatalf("round trip lost parity count: %d", back.ParityCount())
	}
	if back.V != l.V || back.Size != l.Size || len(back.Stripes) != len(l.Stripes) {
		t.Fatal("round trip changed the layout geometry")
	}
	for i := range l.Stripes {
		if back.Stripes[i].Parity != l.Stripes[i].Parity {
			t.Fatalf("stripe %d parity index changed", i)
		}
		for j, u := range l.Stripes[i].Units {
			if back.Stripes[i].Units[j] != u {
				t.Fatalf("stripe %d unit %d changed", i, j)
			}
		}
	}

	// A version-1 document cannot carry parity_units > 1.
	tampered := bytes.Replace(enc, []byte(`"version": 2`), []byte(`"version": 1`), 1)
	if _, err := ReadJSON(bytes.NewReader(tampered)); err == nil {
		t.Error("version-1 JSON with parity_units 2 accepted")
	}

	// Single-parity layouts keep writing version 1, so older readers
	// still open them.
	l1 := hgFanoLayout(t)
	buf.Reset()
	if err := l1.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"version": 1`)) {
		t.Fatalf("single-parity layout JSON not v1:\n%s", buf.Bytes())
	}
}
