package layout

import (
	"testing"

	"repro/internal/design"
)

func TestRatioBasics(t *testing.T) {
	if !R(2, 4).Equal(R(1, 2)) {
		t.Error("2/4 != 1/2")
	}
	if R(1, 3).Cmp(R(1, 2)) >= 0 {
		t.Error("1/3 should be < 1/2")
	}
	if !R(0, 5).Equal(R(0, 1)) {
		t.Error("0/5 != 0/1")
	}
	if !R(1, 3).LessEq(R(1, 3)) {
		t.Error("1/3 <= 1/3")
	}
	if R(1, 2).String() != "1/2" {
		t.Errorf("String = %q", R(1, 2).String())
	}
	if R(1, 2).Float() != 0.5 {
		t.Errorf("Float = %v", R(1, 2).Float())
	}
}

func TestRatioPanics(t *testing.T) {
	for _, fn := range []func(){func() { R(1, 0) }, func() { R(-1, 2) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestParityCountsHG(t *testing.T) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := fromDesignHG(d)
	if err != nil {
		t.Fatal(err)
	}
	counts := l.ParityCounts()
	for disk, c := range counts {
		if c != 3 { // r parity units per disk
			t.Errorf("disk %d: %d parity units, want 3", disk, c)
		}
	}
	if !l.ParityPerfectlyBalanced() {
		t.Error("should be perfectly balanced")
	}
	if l.ParitySpread() != 0 {
		t.Errorf("spread = %d", l.ParitySpread())
	}
}

func TestReconstructionReadsFano(t *testing.T) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := fromDesignHG(d)
	if err != nil {
		t.Fatal(err)
	}
	// λ = 1, k copies: each pair shares k*λ = 3 stripes; each survivor
	// contributes 3 units out of its 9.
	reads := l.ReconstructionReads(0)
	if reads[0] != 0 {
		t.Errorf("failed disk reads = %d", reads[0])
	}
	for disk := 1; disk < 7; disk++ {
		if reads[disk] != 3 {
			t.Errorf("disk %d: %d reads, want 3", disk, reads[disk])
		}
	}
}

func TestWorkloadMatrixSymmetryBIBD(t *testing.T) {
	// For fixed-size stripes the workload matrix is symmetric (stripes
	// crossing i and j are counted identically from both sides).
	d := design.FromDifferenceSet(13, []int{0, 1, 3, 9})
	l, err := fromDesignHG(d)
	if err != nil {
		t.Fatal(err)
	}
	m := l.WorkloadMatrix()
	for i := range m {
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix asymmetric at (%d,%d): %d vs %d", i, j, m[i][j], m[j][i])
			}
		}
	}
}

func TestReconstructionWorkloadFormulaBIBD(t *testing.T) {
	// For a BIBD-based layout the workload is (k-1)/(v-1) for all pairs.
	for _, c := range []struct{ v, k int }{{7, 3}, {13, 4}, {9, 3}} {
		d := design.Known(c.v, c.k)
		if d == nil {
			t.Fatalf("no design (%d,%d)", c.v, c.k)
		}
		l, err := fromDesignHG(d)
		if err != nil {
			t.Fatal(err)
		}
		want := R(c.k-1, c.v-1)
		min, max := l.ReconstructionWorkloadRange()
		if !min.Equal(want) || !max.Equal(want) {
			t.Errorf("(%d,%d): workload [%v,%v], want %v", c.v, c.k, min, max, want)
		}
	}
}

func TestRAID5FullWorkload(t *testing.T) {
	// k = v: every survivor is read in full — the problem declustering
	// solves. Complete design with k=v is a single stripe per row.
	stripes := make([][]int, 4)
	for i := range stripes {
		stripes[i] = []int{0, 1, 2, 3, 4}
	}
	l, err := Assemble(5, stripes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Stripes {
		l.Stripes[i].Parity = i % 5 // rotated parity
	}
	min, max := l.ReconstructionWorkloadRange()
	if !min.Equal(R(1, 1)) || !max.Equal(R(1, 1)) {
		t.Errorf("RAID5 workload [%v,%v], want 1/1", min, max)
	}
}

func TestParityLoadFixedStripeSize(t *testing.T) {
	// For fixed stripe size k, L(d) = r/k = (number of stripes crossing d)/k.
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := fromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	loads := l.ParityLoad()
	for disk, ld := range loads {
		if !ld.Equal(R(1, 1)) { // r=3, k=3: L(d) = 1
			t.Errorf("disk %d: L = %v, want 1", disk, ld)
		}
	}
}

func TestParityLoadMixedStripeSizes(t *testing.T) {
	// Two stripes of size 2 and one of size 4 on v=4, size=2:
	// disks 0,1 in stripes {0,1} (k=2) and {0,1,2,3} (k=4): L = 1/2+1/4 = 3/4.
	l := &Layout{V: 4, Size: 2, Stripes: []Stripe{
		{Units: []Unit{{0, 0}, {1, 0}}, Parity: -1},
		{Units: []Unit{{2, 0}, {3, 0}}, Parity: -1},
		{Units: []Unit{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, Parity: -1},
	}}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	loads := l.ParityLoad()
	for disk, ld := range loads {
		if !ld.Equal(R(3, 4)) {
			t.Errorf("disk %d: L = %v, want 3/4", disk, ld)
		}
	}
}

func TestParityCountsIgnoreUnassigned(t *testing.T) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := fromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range l.ParityCounts() {
		if c != 0 {
			t.Errorf("unassigned layout has parity count %d", c)
		}
	}
}

func TestReconstructionReadsPanicsOutOfRange(t *testing.T) {
	l := &Layout{V: 2, Size: 1, Stripes: []Stripe{{Units: []Unit{{0, 0}, {1, 0}}, Parity: 0}}}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	l.ReconstructionReads(7)
}
