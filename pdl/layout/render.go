package layout

import "fmt"

// RenderGrid returns the layout as the paper's figures draw it: one row
// per unit offset, one column per disk; cell "Dn" is a data unit of
// stripe n, "Pn" its parity unit, "" an unassigned-parity stripe's unit
// rendered as data.
func (l *Layout) RenderGrid() [][]string {
	grid := make([][]string, l.Size)
	for off := range grid {
		grid[off] = make([]string, l.V)
	}
	for si := range l.Stripes {
		s := &l.Stripes[si]
		for ui, u := range s.Units {
			tag := fmt.Sprintf("D%d", si)
			if ui == s.Parity {
				tag = fmt.Sprintf("P%d", si)
			}
			grid[u.Offset][u.Disk] = tag
		}
	}
	return grid
}
