package layout

import (
	"bytes"
	"testing"
)

func TestDegradedReadMatchesDirect(t *testing.T) {
	l := hgFanoLayout(t)
	d, err := NewData(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Mapping().DataUnits()
	for i := 0; i < n; i++ {
		payload := make([]byte, 8)
		for j := range payload {
			payload[j] = byte(i*5 + j*11)
		}
		if err := d.WriteLogical(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	// For every failed disk and every logical unit, the degraded read must
	// equal the direct read.
	for failed := 0; failed < l.V; failed++ {
		for i := 0; i < n; i++ {
			direct, err := d.ReadLogical(i)
			if err != nil {
				t.Fatal(err)
			}
			degraded, err := d.DegradedRead(i, failed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(direct, degraded) {
				t.Fatalf("failed=%d logical=%d: degraded read mismatch", failed, i)
			}
		}
	}
}

func TestDegradedReadValidation(t *testing.T) {
	l := hgFanoLayout(t)
	d, _ := NewData(l, 8)
	if _, err := d.DegradedRead(0, 99); err == nil {
		t.Error("bad failed disk accepted")
	}
	if _, err := d.DegradedRead(-1, 0); err == nil {
		t.Error("bad logical accepted")
	}
}
