package layout

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	l := hgFanoLayout(t)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.V != l.V || back.Size != l.Size || len(back.Stripes) != len(l.Stripes) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d", back.V, back.Size, len(back.Stripes), l.V, l.Size, len(l.Stripes))
	}
	for i := range l.Stripes {
		if back.Stripes[i].Parity != l.Stripes[i].Parity {
			t.Fatalf("stripe %d parity mismatch", i)
		}
		for j := range l.Stripes[i].Units {
			if back.Stripes[i].Units[j] != l.Stripes[i].Units[j] {
				t.Fatalf("stripe %d unit %d mismatch", i, j)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadJSONRejectsInvalidLayout(t *testing.T) {
	// Structurally valid JSON but the layout violates Condition 1
	// (two units of one stripe on the same disk).
	bad := `{"v":2,"size":1,"stripes":[{"units":[[0,0],[0,0]],"parity":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestReadJSONRejectsUncovered(t *testing.T) {
	bad := `{"v":2,"size":2,"stripes":[{"units":[[0,0],[1,0]],"parity":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("partial coverage accepted")
	}
}
