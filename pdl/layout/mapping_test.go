package layout

import (
	"testing"

	"repro/internal/design"
)

func hgFanoLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := fromDesignHG(design.FromDifferenceSet(7, []int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMappingRoundTrip(t *testing.T) {
	l := hgFanoLayout(t)
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	// Data units per copy = stripes * (k-1) = 21 * 2 = 42.
	if m.DataUnits() != 42 {
		t.Errorf("DataUnits = %d, want 42", m.DataUnits())
	}
	for logical := 0; logical < m.DataUnits(); logical++ {
		u, err := m.Map(logical, l.Size)
		if err != nil {
			t.Fatal(err)
		}
		back, ok := m.Logical(u, l.Size)
		if !ok || back != logical {
			t.Fatalf("round trip %d -> %v -> (%d,%v)", logical, u, back, ok)
		}
	}
}

func TestMappingParityNotLogical(t *testing.T) {
	l := hgFanoLayout(t)
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Stripes {
		pu, ok := l.Stripes[i].ParityUnit()
		if !ok {
			t.Fatalf("stripe %d has no parity", i)
		}
		if _, ok := m.Logical(pu, l.Size); ok {
			t.Fatalf("parity unit %v mapped to a logical address", pu)
		}
	}
}

func TestMappingMultiCopyDisk(t *testing.T) {
	l := hgFanoLayout(t)
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	diskUnits := l.Size * 4
	capacity := m.DataUnits() * 4
	for _, logical := range []int{0, m.DataUnits(), capacity - 1} {
		u, err := m.Map(logical, diskUnits)
		if err != nil {
			t.Fatal(err)
		}
		if u.Offset >= diskUnits {
			t.Fatalf("offset %d beyond disk", u.Offset)
		}
		back, ok := m.Logical(u, diskUnits)
		if !ok || back != logical {
			t.Fatalf("multi-copy round trip %d -> %v -> (%d,%v)", logical, u, back, ok)
		}
	}
	if _, err := m.Map(capacity, diskUnits); err == nil {
		t.Error("out-of-capacity address accepted")
	}
	if _, err := m.Map(-1, diskUnits); err == nil {
		t.Error("negative address accepted")
	}
}

func TestMappingRejectsNonMultipleDisk(t *testing.T) {
	l := hgFanoLayout(t)
	m, _ := NewMapping(l)
	if _, err := m.Map(0, l.Size+1); err == nil {
		t.Error("non-multiple disk size accepted")
	}
}

func TestMappingRequiresParity(t *testing.T) {
	l, err := fromDesignSingle(design.FromDifferenceSet(7, []int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapping(l); err == nil {
		t.Error("mapping built without parity assignment")
	}
}

func TestMappingTableEntries(t *testing.T) {
	l := hgFanoLayout(t)
	m, _ := NewMapping(l)
	if m.TableEntries() != 7*9 {
		t.Errorf("TableEntries = %d, want 63", m.TableEntries())
	}
}

func TestStripeAtConsistent(t *testing.T) {
	l := hgFanoLayout(t)
	m, _ := NewMapping(l)
	for si := range l.Stripes {
		for _, u := range l.Stripes[si].Units {
			if got := m.StripeAt(u); got != si {
				t.Fatalf("StripeAt(%v) = %d, want %d", u, got, si)
			}
		}
	}
}

func TestDataWriteReadReconstruct(t *testing.T) {
	l := hgFanoLayout(t)
	d, err := NewData(l, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Write a distinctive payload to every logical unit.
	n := d.Mapping().DataUnits()
	for logical := 0; logical < n; logical++ {
		payload := make([]byte, 16)
		for i := range payload {
			payload[i] = byte(logical*31 + i)
		}
		if err := d.WriteLogical(logical, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	// Read back.
	for logical := 0; logical < n; logical++ {
		got, err := d.ReadLogical(logical)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != byte(logical*31+i) {
				t.Fatalf("logical %d byte %d = %d", logical, i, got[i])
			}
		}
	}
	// Every disk must reconstruct exactly.
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
}

func TestDataOverwriteKeepsParity(t *testing.T) {
	l := hgFanoLayout(t)
	d, err := NewData(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	p1 := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	p2 := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	if err := d.WriteLogical(5, p1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteLogical(5, p2); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadLogical(5)
	for i := range got {
		if got[i] != p2[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], p2[i])
		}
	}
}

func TestDataWrongPayloadSize(t *testing.T) {
	l := hgFanoLayout(t)
	d, _ := NewData(l, 8)
	if err := d.WriteLogical(0, []byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestDataReconstructOutOfRange(t *testing.T) {
	l := hgFanoLayout(t)
	d, _ := NewData(l, 8)
	if _, err := d.ReconstructDisk(99); err == nil {
		t.Error("bad disk accepted")
	}
}

func TestNewDataRejectsBadUnitSize(t *testing.T) {
	l := hgFanoLayout(t)
	if _, err := NewData(l, 0); err == nil {
		t.Error("unit size 0 accepted")
	}
}

func TestMappingRejectsZeroSize(t *testing.T) {
	// Size-0 layouts are constructible (Assemble with no stripes) but
	// have no addressable units; NewMapping and NewData must reject them
	// instead of letting Map divide by zero.
	empty, err := Assemble(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapping(empty); err == nil {
		t.Error("zero-size layout accepted by NewMapping")
	}
	if _, err := NewData(empty, 8); err == nil {
		t.Error("zero-size layout accepted by NewData")
	}
}
