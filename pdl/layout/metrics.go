package layout

import "fmt"

// This file computes the paper's Condition 2 and Condition 3 metrics.
//
// Condition 2 (parity balance): the parity overhead of a disk is the
// fraction of its units that are parity units; the layout metric is the
// maximum (bottleneck) over disks.
//
// Condition 3 (reconstruction balance): the reconstruction workload of an
// ordered disk pair (f, d) is the fraction of disk d that must be read to
// reconstruct f, i.e. (number of stripes crossing both f and d) / Size;
// the layout metric is the maximum over pairs.

// ParityCounts returns, per disk, the number of parity units it holds —
// all ParityCount() units of every stripe, so multi-parity layouts report
// their full overhead. Stripes with unassigned parity contribute nothing.
func (l *Layout) ParityCounts() []int {
	counts := make([]int, l.V)
	m := l.ParityCount()
	for i := range l.Stripes {
		s := &l.Stripes[i]
		if s.Parity < 0 {
			continue
		}
		for j := 0; j < m; j++ {
			counts[s.Units[l.ParityPos(s, j)].Disk]++
		}
	}
	return counts
}

// ParityOverheadRange returns the minimum and maximum per-disk parity
// overhead as exact ratios over Size.
func (l *Layout) ParityOverheadRange() (min, max Ratio) {
	counts := l.ParityCounts()
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return R(lo, l.Size), R(hi, l.Size)
}

// MaxParityOverhead returns the Condition 2 bottleneck metric.
func (l *Layout) MaxParityOverhead() Ratio {
	_, max := l.ParityOverheadRange()
	return max
}

// ReconstructionReads returns, for a failed disk, the number of units that
// must be read from each surviving disk: one unit per stripe crossing both
// the failed and the surviving disk. Entry [failed] is 0.
func (l *Layout) ReconstructionReads(failed int) []int {
	if failed < 0 || failed >= l.V {
		panic(fmt.Sprintf("layout: ReconstructionReads(%d): disk out of range", failed))
	}
	reads := make([]int, l.V)
	for i := range l.Stripes {
		s := &l.Stripes[i]
		crosses := false
		for _, u := range s.Units {
			if u.Disk == failed {
				crosses = true
				break
			}
		}
		if !crosses {
			continue
		}
		for _, u := range s.Units {
			if u.Disk != failed {
				reads[u.Disk]++
			}
		}
	}
	return reads
}

// WorkloadMatrix returns the full matrix m[f][d] of units read from disk d
// when disk f is reconstructed.
func (l *Layout) WorkloadMatrix() [][]int {
	m := make([][]int, l.V)
	for f := 0; f < l.V; f++ {
		m[f] = l.ReconstructionReads(f)
	}
	return m
}

// ReconstructionWorkloadRange returns the minimum and maximum
// reconstruction workload over all ordered pairs (failed, survivor), as
// exact fractions of a disk.
func (l *Layout) ReconstructionWorkloadRange() (min, max Ratio) {
	first := true
	var lo, hi int
	for f := 0; f < l.V; f++ {
		reads := l.ReconstructionReads(f)
		for d := 0; d < l.V; d++ {
			if d == f {
				continue
			}
			if first {
				lo, hi = reads[d], reads[d]
				first = false
				continue
			}
			if reads[d] < lo {
				lo = reads[d]
			}
			if reads[d] > hi {
				hi = reads[d]
			}
		}
	}
	return R(lo, l.Size), R(hi, l.Size)
}

// MaxReconstructionWorkload returns the Condition 3 bottleneck metric.
func (l *Layout) MaxReconstructionWorkload() Ratio {
	_, max := l.ReconstructionWorkloadRange()
	return max
}

// ParityPerfectlyBalanced reports whether all disks hold the same number
// of parity units.
func (l *Layout) ParityPerfectlyBalanced() bool {
	counts := l.ParityCounts()
	for _, c := range counts[1:] {
		if c != counts[0] {
			return false
		}
	}
	return true
}

// ParitySpread returns max - min per-disk parity-unit counts (0 = perfect,
// 1 = the best achievable when v does not divide b, per Corollary 16).
func (l *Layout) ParitySpread() int {
	counts := l.ParityCounts()
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}

// WorkloadPerfectlyBalanced reports whether all ordered disk pairs have the
// same reconstruction workload (the BIBD property).
func (l *Layout) WorkloadPerfectlyBalanced() bool {
	min, max := l.ReconstructionWorkloadRange()
	return min.Equal(max)
}

// ParityLoad returns L(d) for each disk d: the sum over stripes s crossing
// d of 1/k_s, as an exact ratio (Section 4). The flow method guarantees a
// parity assignment giving each disk floor(L(d)) or ceil(L(d)) parity
// units.
func (l *Layout) ParityLoad() []Ratio {
	// Accumulate with a common denominator of lcm of stripe sizes (small).
	den := 1
	for i := range l.Stripes {
		k := len(l.Stripes[i].Units)
		den = den / gcd(den, k) * k
	}
	num := make([]int, l.V)
	for i := range l.Stripes {
		s := &l.Stripes[i]
		w := den / len(s.Units)
		for _, u := range s.Units {
			num[u.Disk] += w
		}
	}
	out := make([]Ratio, l.V)
	for d := range out {
		out[d] = R(num[d], den)
	}
	return out
}
