package layout

import "repro/internal/design"

// fromDesignHG and fromDesignSingle mirror internal/core.FromDesignHG and
// FromDesignSingle, which moved out of this package when it went public so
// it would not depend on internal/. The tests keep exercising the same
// verified-design entry points.
func fromDesignHG(d *design.Design) (*Layout, error) {
	if err := d.Verify(); err != nil {
		return nil, err
	}
	return FromTuplesHG(d.V, d.K, d.Tuples)
}

func fromDesignSingle(d *design.Design) (*Layout, error) {
	if err := d.Verify(); err != nil {
		return nil, err
	}
	return Assemble(d.V, d.Tuples)
}
