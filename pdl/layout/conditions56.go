package layout

// Conditions 5 and 6 of Holland & Gibson — "Large Write Optimization" and
// "Maximal Parallelism" — depend on the layout together with the logical
// address mapping. The paper defers their study to Stockmeyer [15]; we
// implement the metrics so the experiments can report them for every
// construction.

// LargeWriteAlignment returns the fraction of stripes whose data units
// occupy consecutive logical addresses (Condition 5): a client writing
// those addresses as one large write covers the whole stripe, so parity
// can be computed from the new data without pre-reading. Our stripe-major
// logical numbering makes this 1.0 by construction; the metric exists to
// validate that and to evaluate alternative mappings.
func (m *Mapping) LargeWriteAlignment() float64 {
	if len(m.layout.Stripes) == 0 {
		return 0
	}
	aligned := 0
	for si := range m.layout.Stripes {
		s := &m.layout.Stripes[si]
		lo, hi, n := -1, -1, 0
		ok := true
		for ui, u := range s.Units {
			if m.layout.IsParityPos(s, ui) {
				continue
			}
			logical, isData := m.Logical(u, m.layout.Size)
			if !isData {
				ok = false
				break
			}
			if lo < 0 || logical < lo {
				lo = logical
			}
			if logical > hi {
				hi = logical
			}
			n++
		}
		if ok && n > 0 && hi-lo+1 == n {
			aligned++
		}
	}
	return float64(aligned) / float64(len(m.layout.Stripes))
}

// ParallelismProfile returns, over every window of `window` consecutive
// logical data units, the minimum and mean number of distinct disks
// touched (Condition 6: reading v consecutive units should engage as many
// disks as possible). window is typically v.
func (m *Mapping) ParallelismProfile(window int) (min int, mean float64) {
	n := m.DataUnits()
	if window < 1 || window > n {
		return 0, 0
	}
	counts := make([]int, m.layout.V)
	distinct := 0
	add := func(logical int) {
		d := m.forward[logical].Disk
		if counts[d] == 0 {
			distinct++
		}
		counts[d]++
	}
	remove := func(logical int) {
		d := m.forward[logical].Disk
		counts[d]--
		if counts[d] == 0 {
			distinct--
		}
	}
	for i := 0; i < window; i++ {
		add(i)
	}
	min = distinct
	total := distinct
	windows := 1
	for start := 1; start+window <= n; start++ {
		remove(start - 1)
		add(start + window - 1)
		if distinct < min {
			min = distinct
		}
		total += distinct
		windows++
	}
	return min, float64(total) / float64(windows)
}
