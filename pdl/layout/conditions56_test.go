package layout

import (
	"testing"

	"repro/internal/design"
)

func TestLargeWriteAlignmentStripeMajor(t *testing.T) {
	// Our logical numbering is stripe-major: every stripe's data units are
	// consecutive, so alignment is exactly 1.
	l := hgFanoLayout(t)
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LargeWriteAlignment(); got != 1.0 {
		t.Errorf("alignment = %v, want 1.0", got)
	}
}

func TestParallelismProfileRAID5Like(t *testing.T) {
	// Full-width stripes, rotated parity: v consecutive data units span
	// at least two stripes' worth of disks; profile must be within [1, v].
	stripes := make([][]int, 6)
	for i := range stripes {
		stripes[i] = []int{0, 1, 2, 3, 4, 5}
	}
	l, err := Assemble(6, stripes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Stripes {
		l.Stripes[i].Parity = i % 6
	}
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	min, mean := m.ParallelismProfile(6)
	if min < 1 || min > 6 || mean < float64(min) || mean > 6 {
		t.Errorf("profile min=%d mean=%v out of range", min, mean)
	}
	// 6 consecutive units starting at a stripe boundary cover 5 data disks
	// of one stripe + 1 of the next: at least 5 distinct disks.
	if min < 5 {
		t.Errorf("RAID5 sequential parallelism min=%d, want >= 5", min)
	}
}

func TestParallelismProfileDeclustered(t *testing.T) {
	d := design.FromDifferenceSet(13, []int{0, 1, 3, 9})
	l, err := fromDesignHG(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	min, mean := m.ParallelismProfile(13)
	if min < 4 { // a window of 13 units covers >= 4 stripes (3 data units each)
		t.Errorf("declustered min parallelism %d too low", min)
	}
	if mean > 13 {
		t.Errorf("mean %v above v", mean)
	}
}

func TestParallelismProfileEdgeCases(t *testing.T) {
	l := hgFanoLayout(t)
	m, _ := NewMapping(l)
	if min, mean := m.ParallelismProfile(0); min != 0 || mean != 0 {
		t.Error("window 0 should be rejected")
	}
	if min, mean := m.ParallelismProfile(m.DataUnits() + 1); min != 0 || mean != 0 {
		t.Error("oversized window should be rejected")
	}
	// Window 1: always exactly 1 disk.
	min, mean := m.ParallelismProfile(1)
	if min != 1 || mean != 1 {
		t.Errorf("window 1: min=%d mean=%v", min, mean)
	}
	// Window = all data units: touches all disks (every disk holds data).
	minAll, _ := m.ParallelismProfile(m.DataUnits())
	if minAll != l.V {
		t.Errorf("full window covers %d disks, want %d", minAll, l.V)
	}
}

func TestLargeWriteAlignmentDetectsScrambled(t *testing.T) {
	// Hand-build a 2-disk layout where stripe data units are interleaved
	// so stripes are NOT logically contiguous.
	l := &Layout{V: 2, Size: 2, Stripes: []Stripe{
		{Units: []Unit{{0, 0}, {1, 0}}, Parity: 1},
		{Units: []Unit{{0, 1}, {1, 1}}, Parity: 0},
	}}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := NewMapping(l)
	if err != nil {
		t.Fatal(err)
	}
	// Each stripe has a single data unit: trivially contiguous.
	if got := m.LargeWriteAlignment(); got != 1.0 {
		t.Errorf("single-data-unit stripes: alignment %v", got)
	}
}
