package layout

import (
	"fmt"
	"math"
)

// Mapping implements Condition 4: the translation between logical data-unit
// addresses and physical (disk, offset) positions via one table lookup plus
// constant arithmetic. Data units are numbered stripe by stripe in layout
// order, skipping parity units.
//
// For disks larger than one layout (DiskUnits > Size), the layout tiles
// vertically: logical addresses beyond one layout's data capacity wrap to
// the next copy, adding Size to the offset — the constant-arithmetic part
// of the paper's mapping.
//
// All tables are dense slices indexed by disk*Size+offset or by stripe
// index; the stripe table is a CSR (offset + flat units) representation so
// per-stripe lookups return subslices without touching the Layout's
// per-stripe allocations.
type Mapping struct {
	layout *Layout
	// forward[i] = physical unit of logical data unit i (one copy).
	forward []Unit
	// reverse[disk*Size+offset] = logical index, or -1 for parity units.
	reverse []int32
	// stripeOf[disk*Size+offset] = stripe index covering that unit.
	stripeOf []int32
	// stripeOff/stripeUnits are the CSR stripe table: stripe si's units
	// are stripeUnits[stripeOff[si]:stripeOff[si+1]], in stripe order.
	stripeOff   []int32
	stripeUnits []Unit
	// stripeParity[si] = index of the first parity unit within stripe si's
	// units (the layout's remaining parity units follow it mod stripe size).
	stripeParity []int32
	// shardOf[disk*Size+offset] = erasure-code shard index of that unit
	// within its stripe: data units are 0..k-1 in stripe-position order,
	// parity unit j is k+j.
	shardOf []int16
	// parity = the layout's parity units per stripe (m).
	parity int
}

// NewMapping builds the lookup tables for a layout with assigned parity.
func NewMapping(l *Layout) (*Mapping, error) {
	if l.Size <= 0 {
		// A size-0 layout is constructible (e.g. Assemble with no
		// stripes) but has no addressable units; rejecting it here keeps
		// Map/Logical free of divide-by-zero on every public path.
		return nil, fmt.Errorf("layout: NewMapping: layout size %d must be positive", l.Size)
	}
	if !l.ParityAssigned() {
		return nil, fmt.Errorf("layout: NewMapping: parity not fully assigned")
	}
	entries := l.V * l.Size
	if l.V > 0 && (entries/l.V != l.Size || entries > math.MaxInt32) {
		return nil, fmt.Errorf("layout: NewMapping: %d x %d units overflow the 32-bit index tables", l.V, l.Size)
	}
	m := &Mapping{
		layout:       l,
		reverse:      make([]int32, entries),
		stripeOf:     make([]int32, entries),
		stripeOff:    make([]int32, len(l.Stripes)+1),
		stripeParity: make([]int32, len(l.Stripes)),
		shardOf:      make([]int16, entries),
		parity:       l.ParityCount(),
	}
	for i := range m.reverse {
		m.reverse[i] = -1
		m.stripeOf[i] = -1
		m.shardOf[i] = -1
	}
	total := 0
	for si := range l.Stripes {
		total += len(l.Stripes[si].Units)
	}
	m.stripeUnits = make([]Unit, 0, total)
	for si := range l.Stripes {
		s := &l.Stripes[si]
		n := len(s.Units)
		if n > math.MaxInt16 {
			return nil, fmt.Errorf("layout: NewMapping: stripe %d has %d units, shard table holds %d", si, n, math.MaxInt16)
		}
		k := n - m.parity
		m.stripeOff[si] = int32(len(m.stripeUnits))
		m.stripeParity[si] = int32(s.Parity)
		m.stripeUnits = append(m.stripeUnits, s.Units...)
		data := 0
		for ui, u := range s.Units {
			idx := u.Disk*l.Size + u.Offset
			m.stripeOf[idx] = int32(si)
			if l.IsParityPos(s, ui) {
				// Parity unit j occupies position (s.Parity+j) mod n.
				j := ui - s.Parity
				if j < 0 {
					j += n
				}
				m.shardOf[idx] = int16(k + j)
				continue
			}
			m.shardOf[idx] = int16(data)
			data++
			m.reverse[idx] = int32(len(m.forward))
			m.forward = append(m.forward, u)
		}
	}
	m.stripeOff[len(l.Stripes)] = int32(len(m.stripeUnits))
	return m, nil
}

// Layout returns the layout the tables were built from.
func (m *Mapping) Layout() *Layout { return m.layout }

// DataUnits returns the number of logical data units in one layout copy.
func (m *Mapping) DataUnits() int { return len(m.forward) }

// NumStripes returns the number of parity stripes in one layout copy.
func (m *Mapping) NumStripes() int { return len(m.stripeOff) - 1 }

// ForwardUnit returns the physical unit of logical data unit i within one
// layout copy, with no revalidation: i must be in [0, DataUnits()). It is
// the raw table access behind Map for callers (like pdl.Mapper) that have
// validated their disk geometry once up front.
func (m *Mapping) ForwardUnit(i int) Unit { return m.forward[i] }

// LogicalIndex returns the logical data index of the physical position
// (disk, offset) within one layout copy, or -1 for parity units. Like
// ForwardUnit, it is the raw table access behind Logical: disk must be in
// [0, V) and offset in [0, Size).
func (m *Mapping) LogicalIndex(disk, offset int) int {
	return int(m.reverse[disk*m.layout.Size+offset])
}

// StripeUnits returns the units of stripe si (one layout copy) in stripe
// order, as a subslice of the flat stripe table: no allocation, and the
// caller must not modify it. si must be in [0, NumStripes()).
func (m *Mapping) StripeUnits(si int) []Unit {
	return m.stripeUnits[m.stripeOff[si]:m.stripeOff[si+1]]
}

// ParityIndex returns the index of stripe si's first parity unit within
// StripeUnits(si). si must be in [0, NumStripes()).
func (m *Mapping) ParityIndex(si int) int { return int(m.stripeParity[si]) }

// ParityShards returns the layout's parity units per stripe (m).
func (m *Mapping) ParityShards() int { return m.parity }

// DataShards returns the number of data units (k) of stripe si.
func (m *Mapping) DataShards(si int) int {
	return int(m.stripeOff[si+1]-m.stripeOff[si]) - m.parity
}

// ParityUnitAt returns stripe si's j-th parity unit (one layout copy), j
// in [0, ParityShards()).
func (m *Mapping) ParityUnitAt(si, j int) Unit {
	units := m.StripeUnits(si)
	return units[(int(m.stripeParity[si])+j)%len(units)]
}

// ShardIndex returns the erasure-code shard index of the physical
// position (disk, offset) within its stripe, one layout copy: data units
// are 0..k-1 in stripe-position order, parity unit j is k+j. disk must be
// in [0, V) and offset in [0, Size).
func (m *Mapping) ShardIndex(disk, offset int) int {
	return int(m.shardOf[disk*m.layout.Size+offset])
}

// TableEntries returns the size of the in-memory lookup table (the
// Condition 4 memory metric): one entry per unit of one disk per table,
// v tables — we report total entries v*Size.
func (m *Mapping) TableEntries() int { return m.layout.V * m.layout.Size }

// Map translates a logical data-unit address to its physical position on a
// disk with diskUnits units (diskUnits must be a multiple of Size; the
// paper defers non-multiples to Holland–Gibson). It is one table lookup
// plus constant arithmetic.
func (m *Mapping) Map(logical, diskUnits int) (Unit, error) {
	if diskUnits%m.layout.Size != 0 || diskUnits <= 0 {
		return Unit{}, fmt.Errorf("layout: Map: disk size %d not a positive multiple of layout size %d", diskUnits, m.layout.Size)
	}
	capacity := m.DataUnits() * (diskUnits / m.layout.Size)
	if logical < 0 || logical >= capacity {
		return Unit{}, fmt.Errorf("layout: Map: logical %d outside [0,%d)", logical, capacity)
	}
	copyIdx := logical / m.DataUnits()
	u := m.forward[logical%m.DataUnits()]
	return Unit{Disk: u.Disk, Offset: u.Offset + copyIdx*m.layout.Size}, nil
}

// Logical is the inverse of Map: it returns the logical address of a
// physical unit, or ok=false if the unit is a parity unit.
func (m *Mapping) Logical(u Unit, diskUnits int) (int, bool) {
	if diskUnits%m.layout.Size != 0 || diskUnits <= 0 {
		return 0, false
	}
	if u.Disk < 0 || u.Disk >= m.layout.V || u.Offset < 0 || u.Offset >= diskUnits {
		return 0, false
	}
	copyIdx := u.Offset / m.layout.Size
	base := int(m.reverse[u.Disk*m.layout.Size+u.Offset%m.layout.Size])
	if base < 0 {
		return 0, false
	}
	return base + copyIdx*m.DataUnits(), true
}

// StripeAt returns the stripe index covering a physical unit within one
// layout copy.
func (m *Mapping) StripeAt(u Unit) int {
	return int(m.stripeOf[u.Disk*m.layout.Size+u.Offset%m.layout.Size])
}
