package layout

import (
	"testing"
	"testing/quick"

	"repro/internal/design"
)

func TestCopiesPanicsOnZero(t *testing.T) {
	l := hgFanoLayout(t)
	defer func() {
		if recover() == nil {
			t.Error("Copies(0) did not panic")
		}
	}()
	Copies(l, 0)
}

func TestRenderGridRoundTrip(t *testing.T) {
	l := hgFanoLayout(t)
	grid := l.RenderGrid()
	if len(grid) != l.Size || len(grid[0]) != l.V {
		t.Fatalf("grid %dx%d, want %dx%d", len(grid), len(grid[0]), l.Size, l.V)
	}
	// Every cell filled, parity cells count = stripes.
	parities := 0
	for _, row := range grid {
		for _, cell := range row {
			if cell == "" {
				t.Fatal("empty cell")
			}
			if cell[0] == 'P' {
				parities++
			}
		}
	}
	if parities != len(l.Stripes) {
		t.Errorf("%d parity cells, want %d", parities, len(l.Stripes))
	}
}

func TestPropertyHGLayoutAlwaysValid(t *testing.T) {
	// Any verified BIBD from the difference-set catalog yields a valid,
	// perfectly balanced HG layout.
	sets := [][]int{{1, 2, 4}, {0, 1, 3, 9}, {1, 3, 4, 5, 9}}
	vs := []int{7, 13, 11}
	f := func(i uint8) bool {
		idx := int(i) % len(sets)
		d := design.FromDifferenceSet(vs[idx], sets[idx])
		l, err := fromDesignHG(d)
		if err != nil {
			return false
		}
		return l.Check() == nil && l.ParityPerfectlyBalanced() && l.WorkloadPerfectlyBalanced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 9}); err != nil {
		t.Error(err)
	}
}

func TestFromDesignHGRejectsInvalid(t *testing.T) {
	bad := &design.Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}}}
	if _, err := fromDesignHG(bad); err == nil {
		t.Error("unbalanced design accepted")
	}
	if _, err := fromDesignSingle(bad); err == nil {
		t.Error("unbalanced design accepted by single")
	}
}

func TestWorkloadMatrixDiagonalZero(t *testing.T) {
	l := hgFanoLayout(t)
	m := l.WorkloadMatrix()
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %d", i, i, m[i][i])
		}
	}
}
