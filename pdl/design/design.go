// Package design is the public surface for balanced incomplete block
// designs (BIBDs), the combinatorial objects under parity-declustered
// layouts: catalog lookup, the paper's algebraic constructions
// (Theorems 1, 4, 5, 6), complete designs, resolution into parallel
// classes, and the Theorem 7 size lower bound.
//
// Design values are plain data (V, K, Tuples) and flow directly into
// pdl.Build results and pdl/layout constructions.
package design

import (
	"fmt"

	idesign "repro/internal/design"
)

// Design is a block design: a collection of K-element tuples (blocks)
// over the element set {0, ..., V-1}. A Design is not necessarily
// balanced; Verify checks the BIBD conditions and Params reports
// (b, r, λ). Tuple element order is significant for layout constructions;
// balance checks ignore it.
type Design struct {
	V      int
	K      int
	Tuples [][]int
}

// internal converts to the implementation type; the structs are
// field-identical, so the conversion is free.
func (d *Design) internal() *idesign.Design { return (*idesign.Design)(d) }

func fromInternal(d *idesign.Design) *Design { return (*Design)(d) }

// B returns the number of tuples.
func (d *Design) B() int { return len(d.Tuples) }

// Clone returns a deep copy.
func (d *Design) Clone() *Design { return fromInternal(d.internal().Clone()) }

// Params verifies the BIBD conditions and returns the design parameters
// (b, r, λ). ok is false if the design is not a BIBD.
func (d *Design) Params() (b, r, lambda int, ok bool) { return d.internal().Params() }

// Verify checks the BIBD conditions: every element in the same number of
// tuples, every unordered pair in the same number of tuples.
func (d *Design) Verify() error { return d.internal().Verify() }

// ReplicationCount returns r, the number of tuples containing element 0
// (well-defined for balanced designs).
func (d *Design) ReplicationCount() int { return d.internal().ReplicationCount() }

// Known returns the smallest cataloged BIBD for (v, k), or nil when the
// catalog has none.
func Known(v, k int) *Design { return fromInternal(idesign.Known(v, k)) }

// MinB returns the Theorem 7 lower bound on the number of blocks of any
// (v, k) BIBD.
func MinB(v, k int) int { return idesign.MinB(v, k) }

// Complete returns the complete design: every k-subset of {0..v-1} once,
// capped at maxTuples blocks.
func Complete(v, k, maxTuples int) *Design {
	return fromInternal(idesign.Complete(v, k, maxTuples))
}

// Ring builds the Theorem 1 ring-based design for (v, k); it fails when
// k > M(v) (Theorem 2).
func Ring(v, k int) (*Design, error) {
	rd, err := idesign.NewRingDesignForVK(v, k)
	if err != nil {
		return nil, err
	}
	return fromInternal(&rd.Design), nil
}

// Theorem4 builds the redundancy-reduced design of Theorem 4, returning
// the design and its reduction factor over the full ring design.
func Theorem4(v, k int) (*Design, int, error) {
	d, f, err := idesign.Theorem4Design(v, k)
	return fromInternal(d), f, err
}

// Theorem5 builds the redundancy-reduced design of Theorem 5, returning
// the design and its reduction factor.
func Theorem5(v, k int) (*Design, int, error) {
	d, f, err := idesign.Theorem5Design(v, k)
	return fromInternal(d), f, err
}

// Subfield builds the λ = 1 subfield design of Theorem 6, returning the
// design and its reduction factor.
func Subfield(v, k int) (*Design, int, error) {
	d, f, err := idesign.SubfieldDesign(v, k)
	return fromInternal(d), f, err
}

// Resolve attempts to partition the design's blocks into parallel classes
// (each class covering every element exactly once) within maxNodes search
// nodes. ok is false when no resolution was found.
func Resolve(d *Design, maxNodes int) ([][]int, bool) {
	return idesign.Resolve(d.internal(), maxNodes)
}

// IsResolutionValid checks a claimed resolution.
func IsResolutionValid(d *Design, classes [][]int) bool {
	return idesign.IsResolutionValid(d.internal(), classes)
}

// Build resolves a named construction, mirroring the pdldesign CLI:
// known|ring|thm4|thm5|subfield|complete. It returns the design and a
// human-readable description of the construction used.
func Build(method string, v, k int) (*Design, string, error) {
	switch method {
	case "known":
		d := Known(v, k)
		if d == nil {
			return nil, "", fmt.Errorf("design: no known design for v=%d k=%d", v, k)
		}
		return d, "catalog", nil
	case "ring":
		d, err := Ring(v, k)
		if err != nil {
			return nil, "", err
		}
		return d, "ring-based (Theorem 1)", nil
	case "thm4":
		d, f, err := Theorem4(v, k)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("Theorem 4 (reduction factor %d)", f), nil
	case "thm5":
		d, f, err := Theorem5(v, k)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("Theorem 5 (reduction factor %d)", f), nil
	case "subfield":
		d, f, err := Subfield(v, k)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("Theorem 6 subfield (reduction factor %d)", f), nil
	case "complete":
		return Complete(v, k, 1_000_000), "complete", nil
	default:
		return nil, "", fmt.Errorf("design: unknown method %q", method)
	}
}
