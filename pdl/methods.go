package pdl

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/design"
	"repro/pdl/layout"
)

// builtinOptionUse records which tuning options each built-in method
// consumes, so Build can reject options a construction would silently
// ignore (handing back a different layout than requested). Third-party
// registrations are not listed and may consume any option. Maintained
// together with the init registrations below; TestBuiltinOptionUseInSync
// guards the pairing.
// anyK marks methods whose stripes always span the whole array, so k only
// sizes defaults (rows) and may exceed v — matching the historical CLI.
var builtinOptionUse = map[string]struct{ base, rows, seed, anyK bool }{
	"":               {}, // automatic selection
	"ring":           {},
	"balanced-bibd":  {},
	"holland-gibson": {},
	"stairway":       {base: true},
	"removal":        {base: true},
	"raid5":          {rows: true, anyK: true},
	"random":         {rows: true, seed: true},
}

// The built-in construction methods. Each is a Constructor registered
// under the name listed in Methods(); WithMethod selects one, and Build's
// automatic selection composes ring, stairway, and balanced-bibd.
func init() {
	mustRegister("ring", buildRing)
	mustRegister("stairway", buildStairway)
	mustRegister("balanced-bibd", buildBalancedBIBD)
	mustRegister("holland-gibson", buildHollandGibson)
	mustRegister("removal", buildRemoval)
	mustRegister("raid5", buildRAID5)
	mustRegister("random", buildRandom)
	builtinMethods = Methods()
}

// builtinMethods snapshots the registry right after the built-in
// registrations, before any third-party RegisterMethod calls.
var builtinMethods []string

// buildRing: the Section 3.1 ring-based layout (perfect balance, size
// k(v-1)); requires k <= M(v) generators (prime-power v allows any k <= v).
func buildRing(v, k int, o *Options) (*layout.Layout, string, error) {
	rl, err := core.NewRingLayout(v, k)
	if err != nil {
		return nil, "", err
	}
	return rl.Layout, "ring", nil
}

// buildStairway: Theorems 10-12. Reaches a non-prime-power v from a
// prime-power base q < v (WithBase pins q; otherwise the largest workable
// base is searched), falling back to the wide-step extension when
// Equations (8)-(9) have no solution.
func buildStairway(v, k int, o *Options) (*layout.Layout, string, error) {
	try := func(q int) (*layout.Layout, string, error) {
		rl, err := core.NewRingLayout(q, k)
		if err != nil {
			return nil, "", err
		}
		l, _, nerr := core.Stairway(rl, v)
		if nerr == nil {
			return l, fmt.Sprintf("stairway(q=%d)", q), nil
		}
		l, _, werr := core.StairwayWide(rl, v)
		if werr != nil {
			return nil, "", fmt.Errorf("%w; wide-step fallback: %w", nerr, werr)
		}
		return l, fmt.Sprintf("stairway-wide(q=%d)", q), nil
	}
	if o.Base != 0 {
		if o.Base >= v {
			return nil, "", fmt.Errorf("%w: stairway base q=%d must be below v=%d", ErrBadParams, o.Base, v)
		}
		return try(o.Base)
	}
	return core.StairwayForV(v, k)
}

// buildBalancedBIBD: a single copy of the smallest known BIBD with parity
// distributed by the Section 4 network flow (spread at most one).
func buildBalancedBIBD(v, k int, o *Options) (*layout.Layout, string, error) {
	d := design.Known(v, k)
	if d == nil {
		return nil, "", fmt.Errorf("no known BIBD for v=%d, k=%d", v, k)
	}
	// Every non-default parity policy discards the constructor's
	// assignment, so solving the flow here would be wasted work: hand the
	// policy the unassigned single copy instead.
	if o.ParityPolicy != ParityDefault {
		l, err := core.FromDesignSingle(d)
		if err != nil {
			return nil, "", err
		}
		return l, "balanced-bibd", nil
	}
	l, err := core.BalancedFromDesign(d)
	if err != nil {
		return nil, "", err
	}
	return l, "balanced-bibd", nil
}

// buildHollandGibson: the baseline k-copy rotated-parity layout of Holland
// and Gibson over the smallest known BIBD.
func buildHollandGibson(v, k int, o *Options) (*layout.Layout, string, error) {
	d := design.Known(v, k)
	if d == nil {
		return nil, "", fmt.Errorf("no known BIBD for v=%d, k=%d", v, k)
	}
	l, err := core.FromDesignHG(d)
	if err != nil {
		return nil, "", err
	}
	return l, "holland-gibson", nil
}

// buildRemoval: Theorems 8-9. Builds a ring layout on the smallest
// workable prime power q > v (WithBase pins q) and removes the q-v
// highest-numbered disks, trading a bounded imbalance for coverage of
// awkward array sizes.
func buildRemoval(v, k int, o *Options) (*layout.Layout, string, error) {
	try := func(q int) (*layout.Layout, string, error) {
		rl, err := core.NewRingLayout(q, k)
		if err != nil {
			return nil, "", err
		}
		removed := make([]int, q-v)
		for i := range removed {
			removed[i] = v + i
		}
		l, err := core.RemoveDisks(rl, removed)
		if err != nil {
			return nil, "", err
		}
		return l, fmt.Sprintf("removal(q=%d,-%d)", q, q-v), nil
	}
	if o.Base != 0 {
		if o.Base <= v {
			return nil, "", fmt.Errorf("%w: removal base q=%d must exceed v=%d", ErrBadParams, o.Base, v)
		}
		return try(o.Base)
	}
	for q := v + 1; q <= 2*v+2; q++ {
		if _, _, isPP := algebra.IsPrimePower(q); !isPP {
			continue
		}
		if l, tag, err := try(q); err == nil {
			return l, tag, nil
		}
	}
	return nil, "", fmt.Errorf("no prime-power removal base in (%d, %d]", v, 2*v+2)
}

// buildRAID5: the classic left-symmetric rotated-parity baseline; stripes
// span the whole array (the effective stripe size is v, whatever k says).
func buildRAID5(v, k int, o *Options) (*layout.Layout, string, error) {
	rows := o.Rows
	if rows == 0 {
		rows = k * (v - 1)
	}
	l, err := baseline.RAID5(v, rows)
	if err != nil {
		return nil, "", err
	}
	return l, "raid5", nil
}

// buildRandom: the Merchant–Yu-style randomized declustered baseline
// (k must divide v); deterministic for a fixed WithSeed.
func buildRandom(v, k int, o *Options) (*layout.Layout, string, error) {
	rows := o.Rows
	if rows == 0 {
		rows = k * (v - 1)
	}
	l, err := baseline.Random(v, k, rows, o.Seed)
	if err != nil {
		return nil, "", err
	}
	return l, "random", nil
}
