// Package exp is the public surface of the paper's evaluation: every
// figure, table, and simulator study as a runnable experiment producing a
// printable Table.
package exp

import "repro/internal/experiments"

// Table is one experiment's result: an id (e.g. "T5"), caption, column
// headers, and rows; String renders it for terminals.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// internal converts to the implementation type; the structs are
// field-identical, so the conversion is free.
func (t *Table) internal() *experiments.Table { return (*experiments.Table)(t) }

// AddRow appends a row built from arbitrary values (floats render with
// four decimals).
func (t *Table) AddRow(cells ...interface{}) { t.internal().AddRow(cells...) }

// String renders the table with aligned columns.
func (t *Table) String() string { return t.internal().String() }

// All runs every experiment in order. quick=true scales heavy scans down
// to laptop-fast parameters; quick=false runs the full paper-scale
// parameters (e.g. the v <= 10,000 coverage scan).
func All(quick bool) ([]*Table, error) {
	tables, err := experiments.All(quick)
	out := make([]*Table, len(tables))
	for i, tb := range tables {
		out[i] = (*Table)(tb)
	}
	return out, err
}
