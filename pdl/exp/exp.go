// Package exp is the public surface of the paper's evaluation: every
// figure, table, and simulator study as a runnable experiment producing a
// printable Table.
package exp

import "repro/internal/experiments"

// Table is one experiment's result: an id (e.g. "T5"), caption, column
// headers, and rows; String renders it for terminals.
type Table = experiments.Table

// All runs every experiment in order. quick=true scales heavy scans down
// to laptop-fast parameters; quick=false runs the full paper-scale
// parameters (e.g. the v <= 10,000 coverage scan).
func All(quick bool) ([]*Table, error) {
	return experiments.All(quick)
}
